#include "vcluster/transport_tcp.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace ffw {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FFW_CHECK(flags >= 0);
  FFW_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in resolve(const TcpEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    hostent* he = ::gethostbyname(ep.host.c_str());
    FFW_CHECK_MSG(he != nullptr && he->h_addrtype == AF_INET,
                  "tcp: cannot resolve host");
    std::memcpy(&addr.sin_addr, he->h_addr_list[0], sizeof(addr.sin_addr));
  }
  return addr;
}

/// Blocking full read; false on EOF/error. Only used during rendezvous
/// (the 4-byte hello), never after the mesh goes nonblocking.
bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  auto* p = static_cast<const unsigned char*>(buf);
  while (n > 0) {
    const ssize_t r = ::write(fd, p, n);
    if (r <= 0) {
      if (r < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

std::vector<TcpEndpoint> parse_hostfile(const std::string& path, int nranks) {
  std::ifstream in(path);
  FFW_CHECK_MSG(in.good(), "tcp: cannot open hostfile");
  std::vector<TcpEndpoint> eps;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    const auto colon = tok.rfind(':');
    FFW_CHECK_MSG(colon != std::string::npos,
                  "tcp: hostfile line is not host:port");
    eps.push_back({tok.substr(0, colon), std::stoi(tok.substr(colon + 1))});
  }
  FFW_CHECK_MSG(static_cast<int>(eps.size()) >= nranks,
                "tcp: hostfile has fewer entries than ranks");
  eps.resize(static_cast<std::size_t>(nranks));
  return eps;
}

std::vector<TcpEndpoint> loopback_endpoints(int nranks, int base_port) {
  std::vector<TcpEndpoint> eps;
  eps.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    eps.push_back({"127.0.0.1", base_port + r});
  return eps;
}

bool TcpTransport::hosted(int rank) const {
  return local_rank_ < 0 || rank == local_rank_;
}

TcpTransport::Edge& TcpTransport::edge(int rank, int peer) const {
  return *hosts_[static_cast<std::size_t>(rank)]
              ->edges[static_cast<std::size_t>(peer)];
}

TcpTransport::TcpTransport(int nranks, std::vector<TcpEndpoint> endpoints,
                           int local_rank)
    : nranks_(nranks),
      local_rank_(local_rank),
      endpoints_(std::move(endpoints)) {
  FFW_CHECK(nranks >= 1);
  FFW_CHECK(static_cast<int>(endpoints_.size()) == nranks);
  FFW_CHECK(local_rank < nranks);
  listen_fds_.assign(static_cast<std::size_t>(nranks), -1);
  hosts_.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks_; ++r) {
    if (!hosted(r)) continue;
    auto host = std::make_unique<Host>();
    host->edges.resize(static_cast<std::size_t>(nranks));
    for (int p = 0; p < nranks_; ++p)
      host->edges[static_cast<std::size_t>(p)] = std::make_unique<Edge>();
    host->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    FFW_CHECK(host->wake_fd >= 0);
    hosts_[static_cast<std::size_t>(r)] = std::move(host);
  }
  // All hosted ranks listen first, then connect: in process mode the
  // peer's listener may still be coming up, so connects retry.
  for (int r = 0; r < nranks_; ++r) {
    if (!hosted(r)) continue;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    FFW_CHECK(fd >= 0);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = resolve(endpoints_[static_cast<std::size_t>(r)]);
    addr.sin_addr.s_addr = INADDR_ANY;  // listen on all interfaces
    FFW_CHECK_MSG(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "tcp: bind failed (port in use?)");
    FFW_CHECK(::listen(fd, nranks_) == 0);
    listen_fds_[static_cast<std::size_t>(r)] = fd;
  }
  // Connects strictly before accepts: in threads mode every listener is
  // already up, so all connects land in listen backlogs immediately and
  // the accept sweep then completes without any rank's accept waiting
  // on a connect that has not been issued yet.
  for (int r = 0; r < nranks_; ++r)
    if (hosted(r)) connect_peers(r);
  for (int r = 0; r < nranks_; ++r)
    if (hosted(r)) accept_peers(r);
  for (int r = 0; r < nranks_; ++r) {
    if (listen_fds_[static_cast<std::size_t>(r)] >= 0) {
      ::close(listen_fds_[static_cast<std::size_t>(r)]);
      listen_fds_[static_cast<std::size_t>(r)] = -1;
    }
  }
}

void TcpTransport::connect_peers(int rank) {
  // Pair rule: for (lo, hi) the higher rank connects to the lower
  // rank's listener and sends its rank id as a hello, so exactly one
  // socket exists per pair. `rank` therefore connects to every lower
  // peer and accepts from every higher peer.
  for (int p = 0; p < rank; ++p) {
    int fd = -1;
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      FFW_CHECK(fd >= 0);
      sockaddr_in addr = resolve(endpoints_[static_cast<std::size_t>(p)]);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0)
        break;
      ::close(fd);
      fd = -1;
      FFW_CHECK_MSG(std::chrono::steady_clock::now() < give_up,
                    "tcp: rendezvous connect timed out");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const std::int32_t hello = rank;
    FFW_CHECK_MSG(write_exact(fd, &hello, sizeof(hello)),
                  "tcp: hello write failed");
    set_nodelay(fd);
    set_nonblocking(fd);
    edge(rank, p).fd = fd;
  }
}

void TcpTransport::accept_peers(int rank) {
  const int lfd = listen_fds_[static_cast<std::size_t>(rank)];
  for (int i = 0; i < nranks_ - 1 - rank; ++i) {
    const int fd = ::accept(lfd, nullptr, nullptr);
    FFW_CHECK_MSG(fd >= 0, "tcp: accept failed");
    std::int32_t hello = -1;
    FFW_CHECK_MSG(read_exact(fd, &hello, sizeof(hello)),
                  "tcp: hello read failed");
    FFW_CHECK(hello > rank && hello < nranks_);
    set_nodelay(fd);
    set_nonblocking(fd);
    FFW_CHECK_MSG(edge(rank, hello).fd < 0, "tcp: duplicate connection");
    edge(rank, hello).fd = fd;
  }
}

TcpTransport::~TcpTransport() {
  for (auto& host : hosts_) {
    if (!host) continue;
    for (auto& e : host->edges)
      if (e && e->fd >= 0) ::close(e->fd);
    if (host->wake_fd >= 0) ::close(host->wake_fd);
  }
  for (int fd : listen_fds_)
    if (fd >= 0) ::close(fd);
}

void TcpTransport::mark_dead(Edge& e) {
  if (!e.dead.exchange(true)) {
    if (e.fd >= 0) ::shutdown(e.fd, SHUT_RDWR);
  }
}

bool TcpTransport::flush_pending(Edge& e) {
  // Caller holds e.mu.
  while (!e.pending.empty()) {
    const ssize_t w = ::send(e.fd, e.pending.data(), e.pending.size(),
                             MSG_NOSIGNAL);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    obs::add(obs::Counter::kTransportSyscalls, 1);
    if (w > 0) {
      e.pending.erase(e.pending.begin(), e.pending.begin() + w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (w < 0 && errno == EINTR) continue;
    mark_dead(e);
    return false;
  }
  return true;
}

SendStatus TcpTransport::send(int src, int dst, WireFrame frame,
                              int deadline_ms) {
  FFW_CHECK(hosted(src));
  Edge& e = edge(src, dst);
  if (e.dead.load(std::memory_order_acquire)) return SendStatus::kPeerDead;

  std::vector<unsigned char> rec;
  rec.reserve(wire_record_bytes(frame.payload.size()));
  wire_encode(frame, rec);
  wire_bytes_.fetch_add(rec.size(), std::memory_order_relaxed);
  obs::add(obs::Counter::kTransportWireBytes, rec.size());

  std::lock_guard lk(e.mu);
  if (!e.pending.empty()) {
    // Already backpressured: queue behind earlier bytes, then try to
    // make progress.
    e.pending.insert(e.pending.end(), rec.begin(), rec.end());
    return flush_pending(e) ? SendStatus::kOk : SendStatus::kPeerDead;
  }
  std::size_t off = 0;
  while (off < rec.size()) {
    const ssize_t w =
        ::send(e.fd, rec.data() + off, rec.size() - off, MSG_NOSIGNAL);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    obs::add(obs::Counter::kTransportSyscalls, 1);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Nonblocking backpressure: park the rest in the pending buffer
      // (drained opportunistically from this rank's drain()/sends).
      stalls_.fetch_add(1, std::memory_order_relaxed);
      obs::add(obs::Counter::kRingFullStalls, 1);
      e.pending.insert(e.pending.end(), rec.begin() + off, rec.end());
      return SendStatus::kOk;
    }
    mark_dead(e);
    return SendStatus::kPeerDead;
  }
  (void)deadline_ms;
  return SendStatus::kOk;
}

std::size_t TcpTransport::drain(
    int dst, const std::function<void(int src, WireFrame)>& sink) {
  FFW_CHECK(hosted(dst));
  Host& host = *hosts_[static_cast<std::size_t>(dst)];
  std::size_t frames = 0;
  unsigned char chunk[64 * 1024];
  for (int src = 0; src < nranks_; ++src) {
    if (src == dst) continue;
    Edge& e = *host.edges[static_cast<std::size_t>(src)];
    if (e.fd < 0) continue;
    // Progress our own backpressured outbound bytes on this edge too —
    // drain() is the one place rank dst's thread touches every edge.
    {
      std::lock_guard lk(e.mu);
      if (!e.pending.empty() && !e.dead.load(std::memory_order_acquire))
        flush_pending(e);
    }
    if (e.dead.load(std::memory_order_acquire)) continue;
    for (;;) {
      const ssize_t r = ::recv(e.fd, chunk, sizeof(chunk), 0);
      syscalls_.fetch_add(1, std::memory_order_relaxed);
      obs::add(obs::Counter::kTransportSyscalls, 1);
      if (r > 0) {
        e.parser.feed(chunk, static_cast<std::size_t>(r), [&](WireFrame f) {
          ++frames;
          sink(src, std::move(f));
        });
        if (static_cast<std::size_t>(r) < sizeof(chunk)) break;
        continue;
      }
      if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (r < 0 && errno == EINTR) continue;
      // EOF or hard error: the peer is gone.
      mark_dead(e);
      break;
    }
  }
  return frames;
}

void TcpTransport::wait_frames(int dst, int timeout_us) {
  FFW_CHECK(hosted(dst));
  Host& host = *hosts_[static_cast<std::size_t>(dst)];
  pollfd fds[256];
  FFW_CHECK(nranks_ + 1 <= 256);
  nfds_t n = 0;
  for (int src = 0; src < nranks_; ++src) {
    if (src == dst) continue;
    Edge& e = *host.edges[static_cast<std::size_t>(src)];
    if (e.fd < 0 || e.dead.load(std::memory_order_acquire)) continue;
    fds[n].fd = e.fd;
    fds[n].events = POLLIN;
    {
      std::lock_guard lk(e.mu);
      if (!e.pending.empty()) fds[n].events |= POLLOUT;
    }
    fds[n].revents = 0;
    ++n;
  }
  fds[n].fd = host.wake_fd;
  fds[n].events = POLLIN;
  fds[n].revents = 0;
  ++n;
  syscalls_.fetch_add(1, std::memory_order_relaxed);
  obs::add(obs::Counter::kTransportSyscalls, 1);
  const int timeout_ms = std::max(1, timeout_us / 1000);
  ::poll(fds, n, timeout_ms);
  // Swallow the wake token so the next wait can park again.
  std::uint64_t tok;
  while (::read(host.wake_fd, &tok, sizeof(tok)) > 0) {}
}

void TcpTransport::wake_all() {
  const std::uint64_t one = 1;
  for (auto& host : hosts_) {
    if (!host) continue;
    [[maybe_unused]] ssize_t r =
        ::write(host->wake_fd, &one, sizeof(one));
  }
}

void TcpTransport::reset() {
  // Drain any bytes still sitting in socket buffers or parser staging;
  // pending outbound bytes are dropped outright.
  unsigned char chunk[64 * 1024];
  for (auto& host : hosts_) {
    if (!host) continue;
    for (auto& ep : host->edges) {
      if (!ep || ep->fd < 0) continue;
      std::lock_guard lk(ep->mu);
      ep->pending.clear();
      ep->parser = FrameParser{};
      while (::recv(ep->fd, chunk, sizeof(chunk), 0) > 0) {}
    }
  }
}

bool TcpTransport::peer_dead(int rank) const {
  // A peer is dead when any hosted rank saw its connection drop.
  for (int r = 0; r < nranks_; ++r) {
    if (!hosted(r) || r == rank) continue;
    const Edge& e = edge(r, rank);
    if (e.fd >= 0 && e.dead.load(std::memory_order_acquire)) return true;
  }
  return false;
}

TransportCounters TcpTransport::counters() const {
  return TransportCounters{syscalls_.load(std::memory_order_relaxed),
                           stalls_.load(std::memory_order_relaxed),
                           wire_bytes_.load(std::memory_order_relaxed)};
}

}  // namespace ffw
