// Deterministic fault injection and failure reporting for the virtual
// cluster (DESIGN.md Sec. 12).
//
// At the paper's target scale (4,096 ranks, Sec. VII) message-timing
// pathologies and rank failures are routine operating conditions, not
// exceptions. This header defines the fault model the communication
// layer implements:
//
//  * FaultPlan — a seeded, per-edge schedule of message drop /
//    duplication / reorder / payload corruption plus rank stalls and
//    rank crashes at the Nth send. Every decision is a pure function of
//    (seed, src, dst, tag, sequence number), so a failing run replays
//    bit-for-bit regardless of thread interleaving.
//  * CommFailure hierarchy — what a rank observes when the cluster
//    degrades: an injected crash (RankFailure), a CRC-detected corrupt
//    payload (CorruptMessage), an expired wait deadline with the cluster
//    wait-for graph attached (DeadlineExceeded), or the secondary
//    "someone else failed first" signal (ClusterAborted).
//  * crc32 — the frame checksum VCluster stamps on every payload at
//    deposit and verifies at recv, so injected corruption is detected at
//    the receive boundary instead of silently flowing into spectra.
//
// VCluster::run catches CommFailure from any rank thread, poisons the
// cluster so every other rank unblocks with ClusterAborted, and rethrows
// the primary failure to the caller — the supervisor loop of the
// crash-recoverable DBIM driver (dbim/parallel_driver.hpp) catches it,
// calls VCluster::recover() and resumes from the last atomic checkpoint.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ffw {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `n` bytes. `seed` chains
/// incremental computations; pass the previous return value to continue.
std::uint32_t crc32(const unsigned char* p, std::size_t n,
                    std::uint32_t seed = 0);

// ---- Failure signals ----------------------------------------------------

/// Base class of every communication-layer failure. `rank()` is the rank
/// that first observed the failure.
class CommFailure : public std::runtime_error {
 public:
  CommFailure(int rank, const std::string& what)
      : std::runtime_error(what), rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// An injected rank crash (FaultPlan::Crash fired at this rank's Nth
/// send). Models a node failure: the send never reaches the wire.
class RankFailure : public CommFailure {
 public:
  using CommFailure::CommFailure;
};

/// CRC mismatch between a frame's stamped checksum and its payload,
/// detected at recv — corruption never flows into the solver.
class CorruptMessage : public CommFailure {
 public:
  using CommFailure::CommFailure;
};

/// A recv/wait_any/barrier exceeded CommOptions::deadline_ms. what()
/// carries the full cluster wait-for graph (every blocked rank with its
/// (src, tag) keys, pending-queue state, and the dependency cycle if one
/// exists).
class DeadlineExceeded : public CommFailure {
 public:
  using CommFailure::CommFailure;
};

/// Secondary failure: another rank failed first and poisoned the
/// cluster; this rank was unblocked so the whole run() can unwind.
class ClusterAborted : public CommFailure {
 public:
  using CommFailure::CommFailure;
};

// ---- Fault plan ---------------------------------------------------------

/// Per-message fault probabilities on one directed edge. Probabilities
/// are evaluated independently per message in the order drop, duplicate,
/// reorder, corrupt (at most one action fires per message).
struct FaultSpec {
  double drop = 0.0;       ///< message vanishes after send accounting
  double duplicate = 0.0;  ///< delivered twice (same sequence number)
  double reorder = 0.0;    ///< delivery held back ~reorder_hold_us
  double corrupt = 0.0;    ///< one payload byte flipped in flight
  int reorder_hold_us = 500;

  bool any() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || corrupt > 0.0;
  }
};

/// Deterministic, seeded fault schedule for one cluster. Install with
/// VCluster::install_fault_plan while no run() is in flight.
struct FaultPlan {
  std::uint64_t seed = 1;

  /// Faults applied on every edge unless overridden below.
  FaultSpec all;
  /// Per-(src, dst) overrides (replace `all` entirely for that edge).
  std::map<std::pair<int, int>, FaultSpec> per_edge;

  /// Kill `rank` when its cumulative send counter reaches `at_send`
  /// (1-based, counted across recoveries). Each entry fires exactly
  /// once; schedule several entries to inject several crashes.
  struct Crash {
    int rank = 0;
    std::uint64_t at_send = 1;
  };
  std::vector<Crash> crashes;

  /// Stall `rank` for `duration_us` when its send counter reaches
  /// `at_send` (fires once; pairs with deadlines to turn a slow rank
  /// into a diagnosed abort instead of a silent hang).
  struct Stall {
    int rank = 0;
    std::uint64_t at_send = 1;
    int duration_us = 0;
  };
  std::vector<Stall> stalls;

  const FaultSpec& spec_for(int src, int dst) const {
    const auto it = per_edge.find({src, dst});
    return it == per_edge.end() ? all : it->second;
  }
};

/// What the injector actually did (queried via VCluster::fault_stats()).
struct FaultStats {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t crashes = 0;
  std::uint64_t stalls = 0;

  std::uint64_t total() const {
    return drops + duplicates + reorders + corruptions + crashes + stalls;
  }
  bool operator==(const FaultStats&) const = default;
};

/// Per-message fault decision, a pure function of the plan seed and the
/// message identity (src, dst, tag, per-edge sequence number) — replays
/// bit-for-bit no matter how rank threads interleave.
enum class FaultAction { kNone, kDrop, kDuplicate, kReorder, kCorrupt };
FaultAction fault_decide(const FaultPlan& plan, int src, int dst, int tag,
                         std::uint64_t seq);

/// Which payload byte a kCorrupt action flips (deterministic, in
/// [0, len)). `len` must be nonzero.
std::size_t fault_corrupt_offset(const FaultPlan& plan, int src, int dst,
                                 std::uint64_t seq, std::size_t len);

}  // namespace ffw
