// Virtual cluster: an in-process message-passing runtime standing in for
// MPI (no MPI is available in this environment; see DESIGN.md Sec. 2).
//
// Each rank runs on its own thread and communicates exclusively through
// this API — matched send/recv with tags, barriers, and collectives
// implemented *on top of* point-to-point messages (recursive doubling)
// so that the traffic accounting reflects what a real MPI job would put
// on the wire. The per-edge byte/message counters feed the performance
// model that reproduces the paper's scaling figures.
//
// Semantics follow the MPI subset the paper needs:
//  * send() is buffered (returns immediately) — the paper's
//    communication/computation overlap (Fig. 8) posts sends early and
//    drains receives late, which this models faithfully.
//  * recv() blocks until a matching (src, tag) message arrives; message
//    order between a fixed (src, dst, tag) triple is FIFO.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ffw {

struct TrafficStats {
  // bytes[src * nranks + dst], messages likewise.
  int nranks = 0;
  std::vector<std::uint64_t> bytes;
  std::vector<std::uint64_t> messages;

  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;
  /// Max bytes sent+received by any single rank (the scaling bottleneck).
  std::uint64_t max_rank_bytes() const;
};

/// Aggregate traffic of one tag (e.g. one MLFMA level's halo exchange).
/// Lets tests assert that a scheduling change moved *when* messages are
/// drained without changing *what* goes on the wire.
struct TagTraffic {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  bool operator==(const TagTraffic&) const = default;
};

class VCluster;

/// Per-rank communicator handle, valid only inside VCluster::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Buffered, tagged point-to-point send. Returns immediately.
  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               reinterpret_cast<const unsigned char*>(data.data()),
               data.size() * sizeof(T));
  }

  /// Blocking receive of a message matching (src, tag).
  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<unsigned char> raw = recv_bytes(src, tag);
    FFW_CHECK_MSG(raw.size() % sizeof(T) == 0, "message size mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Blocking receive directly into a caller buffer (size must match).
  template <typename T>
  void recv_into(int src, int tag, std::span<T> out) {
    const std::vector<unsigned char> raw = recv_bytes(src, tag);
    FFW_CHECK_MSG(raw.size() == out.size() * sizeof(T),
                  "recv_into size mismatch");
    std::memcpy(out.data(), raw.data(), raw.size());
  }

  /// True if a matching message is already queued (non-blocking probe;
  /// used to drain communication while computing, Fig. 8 style).
  bool probe(int src, int tag);

  /// Blocks until at least one of the (src, tag) keys has a queued
  /// message and returns the index of a ready key. This is the
  /// arrival-order primitive of the overlapped MLFMA schedule: after all
  /// local work is exhausted, the rank parks here and services whichever
  /// peer message lands next instead of imposing a fixed drain order.
  /// When several keys are ready the scan start rotates round-robin per
  /// call, so under sustained arrivals every key gets serviced instead
  /// of the lowest index starving the rest.
  std::size_t wait_any(std::span<const std::pair<int, int>> keys);

  void barrier();

  /// In-place sum-allreduce over complex vectors (recursive doubling).
  void allreduce_sum(cspan inout);
  void allreduce_sum(rspan inout);
  double allreduce_max(double v);
  double allreduce_sum(double v);

  /// Broadcast from root (binomial tree over point-to-point sends).
  void bcast(cspan data, int root);

  /// Sum-allreduce over a subgroup of ranks (sorted, must contain
  /// rank()). Used by the 2-D DBIM driver: a *tree group* shares one
  /// MLFMA, an *illumination column* combines gradients (paper Fig. 6).
  /// Implemented as gather-to-leader + broadcast over point-to-point
  /// messages so traffic accounting stays faithful.
  void group_allreduce_sum(cspan inout, std::span<const int> group);
  void group_allreduce_sum(rspan inout, std::span<const int> group);
  double group_allreduce_sum(double v, std::span<const int> group);

 private:
  friend class VCluster;
  Comm(VCluster* owner, int rank) : owner_(owner), rank_(rank) {}

  void send_bytes(int dst, int tag, const unsigned char* p, std::size_t n);
  std::vector<unsigned char> recv_bytes(int src, int tag);

  VCluster* owner_;
  int rank_;
  std::size_t wait_any_start_ = 0;  // round-robin scan rotation
};

class VCluster {
 public:
  explicit VCluster(int nranks);

  /// Run `rank_main` on every rank (one thread per rank) and join.
  /// Any FFW_CHECK failure in a rank aborts the process (fail-fast).
  void run(const std::function<void(Comm&)>& rank_main);

  int size() const { return nranks_; }

  /// Traffic observed since construction (or last reset).
  TrafficStats traffic() const;
  void reset_traffic();

  /// Traffic of one tag / all tags (counted at send time, like `traffic`).
  TagTraffic tag_traffic(int tag) const;
  std::map<int, TagTraffic> traffic_by_tag() const;

  /// Inject an artificial delivery latency: `delay_us(src, dst, tag)` is
  /// evaluated on the sender thread (must be thread-safe) and the message
  /// becomes visible to the receiver only after that many microseconds —
  /// send() still returns immediately, so this models a slow interconnect
  /// without stalling the sender. Used by the overlap tests/benches to
  /// force out-of-order halo arrival. Caveat: two in-flight messages on
  /// the same (src, dst, tag) triple may invert their FIFO order under
  /// unequal delays; the MLFMA apply sends each (src, tag) at most once
  /// per collective apply, and callers issuing repeated delayed applies
  /// in one run() must fence them with barrier(). Pass nullptr to
  /// disable. Only call while no run() is in flight.
  void set_send_delay(std::function<int(int src, int dst, int tag)> delay_us);

 private:
  friend class Comm;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // keyed by (src, tag)
    std::map<std::pair<int, int>, std::deque<std::vector<unsigned char>>> q;
  };

  void deposit(int src, int dst, int tag, std::vector<unsigned char> bytes);
  void deliver(int src, int dst, int tag, std::vector<unsigned char> bytes);

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;

  // Delayed-delivery machinery (test/bench instrumentation).
  std::function<int(int, int, int)> delay_fn_;
  std::mutex delay_mu_;
  std::vector<std::thread> delay_threads_;

  // Central barrier.
  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_count_ = 0;
  std::uint64_t bar_gen_ = 0;

  mutable std::mutex stats_mu_;
  std::vector<std::uint64_t> bytes_;
  std::vector<std::uint64_t> messages_;
  std::map<int, TagTraffic> by_tag_;
};

}  // namespace ffw
