// Virtual cluster: an in-process message-passing runtime standing in for
// MPI (no MPI is available in this environment; see DESIGN.md Sec. 2).
//
// Each rank runs on its own thread and communicates exclusively through
// this API — matched send/recv with tags, barriers, and collectives
// implemented *on top of* point-to-point messages (recursive doubling)
// so that the traffic accounting reflects what a real MPI job would put
// on the wire. The per-edge byte/message counters feed the performance
// model that reproduces the paper's scaling figures.
//
// Semantics follow the MPI subset the paper needs:
//  * send() is buffered (returns immediately) — the paper's
//    communication/computation overlap (Fig. 8) posts sends early and
//    drains receives late, which this models faithfully.
//  * recv() blocks until a matching (src, tag) message arrives; message
//    order between a fixed (src, dst, tag) triple is FIFO. FIFO holds
//    under arbitrary delivery delays and injected reordering: every
//    message carries a per-edge sequence number stamped at send, and the
//    receiving mailbox commits frames in send order through a reorder
//    buffer (duplicates are discarded by the same mechanism).
//
// Robustness layer (DESIGN.md Sec. 12): payloads are CRC32-framed at
// send and verified at recv; a seeded FaultPlan (vcluster/fault.hpp) can
// deterministically drop/duplicate/reorder/corrupt messages and stall or
// crash ranks; recv/wait_any/barrier accept a deadline that converts a
// silent hang into a DeadlineExceeded failure carrying the cluster
// wait-for graph. Any CommFailure thrown in one rank poisons the
// cluster, unblocks every other rank with ClusterAborted, and is
// rethrown from run() so a supervisor can recover() and retry.
//
// Transports (DESIGN.md Sec. 16): everything above — framing, the
// reorder buffer, fault injection, deadlines, ledgers — is
// backend-agnostic; the actual byte moving is a pluggable Transport
// (vcluster/transport.hpp). Ranks can therefore be threads of this
// process (default, in-process mailbox or shm/tcp loopback for
// testing) or real processes (ffw_launch + vcluster/bootstrap.hpp),
// one rank per process over shared-memory rings or a TCP mesh.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "vcluster/fault.hpp"
#include "vcluster/transport.hpp"

namespace ffw {

struct TrafficStats {
  // bytes[src * nranks + dst], messages likewise.
  int nranks = 0;
  std::vector<std::uint64_t> bytes;
  std::vector<std::uint64_t> messages;

  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;
  /// Max bytes sent+received by any single rank (the scaling bottleneck).
  std::uint64_t max_rank_bytes() const;
};

/// Aggregate traffic of one tag (e.g. one MLFMA level's halo exchange).
/// Lets tests assert that a scheduling change moved *when* messages are
/// drained without changing *what* goes on the wire.
struct TagTraffic {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  bool operator==(const TagTraffic&) const = default;
};

/// Cluster-wide communication options (install via
/// VCluster::set_comm_options while no run() is in flight).
struct CommOptions {
  /// Deadline for every blocking wait (recv, wait_any, barrier) in
  /// milliseconds; 0 disables. On expiry the blocked rank assembles the
  /// cluster wait-for graph from all ranks' published blocked-on state
  /// and pending-queue contents, dumps it to stderr, bumps the obs
  /// kDeadlineAborts counter and throws DeadlineExceeded — a hang
  /// becomes an actionable report naming the cycle.
  int deadline_ms = 0;
};

class VCluster;

/// Per-rank communicator handle, valid only inside VCluster::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Buffered, tagged point-to-point send. Returns immediately.
  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               reinterpret_cast<const unsigned char*>(data.data()),
               data.size() * sizeof(T));
  }

  /// Blocking receive of a message matching (src, tag).
  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<unsigned char> raw = recv_bytes(src, tag);
    FFW_CHECK_MSG(raw.size() % sizeof(T) == 0, "message size mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Blocking receive directly into a caller buffer (size must match).
  template <typename T>
  void recv_into(int src, int tag, std::span<T> out) {
    const std::vector<unsigned char> raw = recv_bytes(src, tag);
    FFW_CHECK_MSG(raw.size() == out.size() * sizeof(T),
                  "recv_into size mismatch");
    std::memcpy(out.data(), raw.data(), raw.size());
  }

  /// True if a matching message is already queued (non-blocking probe;
  /// used to drain communication while computing, Fig. 8 style).
  bool probe(int src, int tag);

  /// Blocks until at least one of the (src, tag) keys has a queued
  /// message and returns the index of a ready key. This is the
  /// arrival-order primitive of the overlapped MLFMA schedule: after all
  /// local work is exhausted, the rank parks here and services whichever
  /// peer message lands next instead of imposing a fixed drain order.
  /// When several keys are ready the scan start rotates round-robin per
  /// call, so under sustained arrivals every key gets serviced instead
  /// of the lowest index starving the rest.
  std::size_t wait_any(std::span<const std::pair<int, int>> keys);

  void barrier();

  /// In-place sum-allreduce over complex vectors (recursive doubling).
  void allreduce_sum(cspan inout);
  void allreduce_sum(rspan inout);
  double allreduce_max(double v);
  double allreduce_sum(double v);

  /// Broadcast from root (binomial tree over point-to-point sends).
  void bcast(cspan data, int root);

  /// Sum-allreduce over a subgroup of ranks (sorted, must contain
  /// rank()). Used by the 2-D DBIM driver: a *tree group* shares one
  /// MLFMA, an *illumination column* combines gradients (paper Fig. 6).
  /// Implemented as gather-to-leader + broadcast over point-to-point
  /// messages so traffic accounting stays faithful.
  void group_allreduce_sum(cspan inout, std::span<const int> group);
  void group_allreduce_sum(rspan inout, std::span<const int> group);
  double group_allreduce_sum(double v, std::span<const int> group);

  /// Broadcast from group[0] over a subgroup of ranks (sorted, must
  /// contain rank()): binomial tree over the group positions, like
  /// bcast but window-scoped. This is the band-group communicator
  /// primitive of the frequency dimension (dbim/continuation_parallel):
  /// concurrent band groups use disjoint rank pairs, so their traffic
  /// cannot collide on the shared (src, tag) message keys.
  void group_bcast(cspan data, std::span<const int> group);
  void group_bcast(rspan data, std::span<const int> group);

 private:
  friend class VCluster;
  Comm(VCluster* owner, int rank) : owner_(owner), rank_(rank) {}

  void send_bytes(int dst, int tag, const unsigned char* p, std::size_t n);
  std::vector<unsigned char> recv_bytes(int src, int tag);
  // Polled variants for transports without direct delivery: pump the
  // transport, check the mailbox, park in bounded wait_frames slices —
  // re-checking aborted / dead-peer / deadline between slices, so a
  // peer process dying mid-wait fails fast (or fires DeadlineExceeded
  // with the wait-for graph) instead of hanging in a blocking read.
  std::vector<unsigned char> recv_bytes_polled(int src, int tag);
  std::size_t wait_any_polled(std::span<const std::pair<int, int>> keys);
  /// Dissemination barrier over point-to-point messages (process mode,
  /// where ranks share no central barrier state).
  void barrier_messages();

  VCluster* owner_;
  int rank_;
  std::size_t wait_any_start_ = 0;  // round-robin scan rotation
};

class VCluster {
 public:
  /// Threads mode over the default transport: $FFW_TRANSPORT if set
  /// ("inproc" | "shm" | "tcp"), else the in-process mailbox — which is
  /// bit-identical in behavior and byte-identical in ledgers to the
  /// pre-transport VCluster.
  explicit VCluster(int nranks);

  /// Threads mode over an explicit transport (every rank hosted here).
  VCluster(int nranks, std::shared_ptr<Transport> transport);

  /// Process mode: this instance hosts exactly one rank (`local_rank`)
  /// of an `nranks`-wide world; the transport (shm segment or TCP mesh,
  /// shared with the sibling processes) carries everything. run() then
  /// executes rank_main once, on the calling thread.
  VCluster(int nranks, std::shared_ptr<Transport> transport, int local_rank);

  /// Run `rank_main` on every rank (one thread per rank) and join.
  /// Any FFW_CHECK failure in a rank aborts the process (fail-fast).
  /// A CommFailure thrown by a rank (injected crash, CRC mismatch,
  /// deadline expiry) poisons the cluster — every other blocked rank
  /// unwinds with ClusterAborted — and the primary failure is rethrown
  /// here after all rank threads joined. Call recover() before the next
  /// run() after a failure.
  void run(const std::function<void(Comm&)>& rank_main);

  int size() const { return nranks_; }

  /// True when every rank runs as a thread of this process (threads
  /// mode); false when this instance hosts a single rank of a
  /// multi-process world.
  bool hosts_all() const { return local_rank_ < 0; }
  /// The one hosted rank in process mode; -1 in threads mode.
  int local_rank() const { return local_rank_; }

  /// The byte-moving backend under this cluster.
  Transport& transport() { return *transport_; }
  const Transport& transport() const { return *transport_; }

  /// Traffic observed since construction (or last reset). Counts payload
  /// bytes only; the fixed per-message frame header (sequence number +
  /// CRC32) is accounted separately in frame_overhead_bytes().
  TrafficStats traffic() const;
  void reset_traffic();

  /// Traffic of one tag / all tags (counted at send time, like `traffic`).
  TagTraffic tag_traffic(int tag) const;
  std::map<int, TagTraffic> traffic_by_tag() const;

  /// Total bytes of frame headers (kFrameBytes per message) since
  /// construction or the last reset_traffic(). Kept out of the payload
  /// ledger so per-tag wire volumes stay comparable across runs with and
  /// without the robustness layer.
  std::uint64_t frame_overhead_bytes() const;

  /// Frame header size on the modeled wire: 8-byte per-edge sequence
  /// number + 4-byte CRC32 of the payload.
  static constexpr std::uint64_t kFrameBytes = 12;

  /// Inject an artificial delivery latency: `delay_us(src, dst, tag)` is
  /// evaluated on the sender thread (must be thread-safe) and the message
  /// becomes visible to the receiver only after that many microseconds —
  /// send() still returns immediately, so this models a slow interconnect
  /// without stalling the sender. Delivery order on one (src, dst, tag)
  /// triple stays FIFO even under unequal delays: the receiver's reorder
  /// buffer commits frames in sequence-number order. Pass nullptr to
  /// disable. Only call while no run() is in flight.
  void set_send_delay(std::function<int(int src, int dst, int tag)> delay_us);

  /// Install (or, with a default-constructed plan, remove) a
  /// deterministic fault-injection plan. Only call while no run() is in
  /// flight. Crash/stall entries fire once each, keyed on cumulative
  /// per-rank send counts that survive recover(), so a recovered run
  /// does not replay an already-fired crash.
  void install_fault_plan(FaultPlan plan);

  /// What the injector actually did so far (cumulative, survives
  /// recover()).
  FaultStats fault_stats() const;

  /// Test hook: called on the sending rank's thread after each send is
  /// counted, with the cumulative per-rank send number (the same
  /// counter crash/stall FaultSpecs key off). The process-mode e2e test
  /// uses it to raise SIGKILL at a send count taken from a fault-free
  /// reference run. Only call while no run() is in flight; pass nullptr
  /// to remove.
  void set_send_hook(std::function<void(int rank, std::uint64_t nsend)> hook);

  /// Cluster-wide wait deadlines etc. Only call while no run() is in
  /// flight.
  void set_comm_options(CommOptions opts);

  /// Reset the cluster after a failed run(): clears the poison flag,
  /// drops every undelivered frame and reorder-buffer entry, resets the
  /// per-edge sequence counters and the barrier. Traffic and fault
  /// statistics and the fired-crash bookkeeping are preserved. Only call
  /// while no run() is in flight.
  void recover();

 private:
  friend class Comm;

  /// One framed message as it travels sender -> mailbox: payload plus
  /// the per-edge sequence number and payload CRC32 stamped at deposit.
  struct Frame {
    std::uint64_t seq = 0;
    std::uint32_t crc = 0;
    std::vector<unsigned char> bytes;
  };

  /// Per-(src, tag) receive queue: frames commit to `ready` strictly in
  /// sequence order; out-of-order arrivals park in `held` until the gap
  /// fills. Duplicates (seq already committed or held) are discarded.
  struct EdgeQueue {
    std::uint64_t next_commit = 0;
    std::map<std::uint64_t, Frame> held;
    std::deque<Frame> ready;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // keyed by (src, tag)
    std::map<std::pair<int, int>, EdgeQueue> q;
  };

  /// Published "what am I blocked on" state, one slot per rank; feeds
  /// the wait-for graph a deadline expiry dumps.
  struct BlockedState {
    enum class Kind { kNone, kRecv, kWaitAny, kBarrier };
    Kind kind = Kind::kNone;
    std::vector<std::pair<int, int>> keys;  // (src, tag) being waited on
  };

  void deposit(int src, int dst, int tag, std::vector<unsigned char> bytes);
  /// Hands one framed message to the transport (or straight to the
  /// destination mailbox for direct-delivery backends). Send failures
  /// only throw on the sending rank's thread, never on a delayed-
  /// delivery thread.
  void ship(int src, int dst, int tag, Frame frame, bool on_rank_thread);
  void deliver(int dst, int src, int tag, Frame frame);
  /// Pulls every frame the transport has for `rank` into its mailbox.
  /// Called only from rank's own thread (polled backends).
  void pump(int rank);

  void publish_blocked(int rank, BlockedState::Kind kind,
                       std::vector<std::pair<int, int>> keys);
  void clear_blocked(int rank);
  /// Formats the cluster wait-for graph (blocked ranks, their keys,
  /// pending-queue state, dependency cycle) as seen by `aborting_rank`.
  std::string wait_for_report(int aborting_rank, const char* waiting_in);
  /// Dumps the wait-for graph and throws DeadlineExceeded.
  [[noreturn]] void deadline_abort(int rank, const char* waiting_in);

  /// Marks the cluster failed and wakes every blocked rank so it can
  /// throw ClusterAborted.
  void poison();
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  [[noreturn]] void throw_cluster_aborted(int rank) const;

  int nranks_;
  std::shared_ptr<Transport> transport_;
  int local_rank_ = -1;  // process mode: the one hosted rank
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::function<void(int, std::uint64_t)> send_hook_;

  // Delayed-delivery machinery (test/bench instrumentation).
  std::function<int(int, int, int)> delay_fn_;
  std::mutex delay_mu_;
  std::vector<std::thread> delay_threads_;

  // Central barrier.
  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_count_ = 0;
  std::uint64_t bar_gen_ = 0;

  mutable std::mutex stats_mu_;
  std::vector<std::uint64_t> bytes_;
  std::vector<std::uint64_t> messages_;
  std::map<int, TagTraffic> by_tag_;
  std::uint64_t frame_bytes_ = 0;
  // Per-edge send sequence stamps, keyed (src, dst, tag); guarded by
  // stats_mu_ (deposit already holds it for the ledger).
  std::map<std::tuple<int, int, int>, std::uint64_t> edge_seq_;
  // Cumulative sends per rank (crash/stall triggers key off these).
  std::vector<std::uint64_t> rank_sends_;

  // Fault injection (vcluster/fault.hpp).
  FaultPlan plan_;
  bool plan_active_ = false;
  std::vector<bool> crash_fired_;
  std::vector<bool> stall_fired_;
  mutable std::mutex fault_mu_;
  FaultStats fault_stats_;

  // Failure propagation.
  CommOptions opts_;
  std::atomic<bool> aborted_{false};
  std::mutex fail_mu_;
  std::exception_ptr first_failure_;
  bool first_failure_primary_ = false;

  // Blocked-on publication (wait-for graph inputs).
  mutable std::mutex blocked_mu_;
  std::vector<BlockedState> blocked_;
};

}  // namespace ffw
