#include "vcluster/transport.hpp"

#include <unistd.h>

#include <cstdlib>

#include "common/check.hpp"
#include "vcluster/shm_ring.hpp"
#include "vcluster/transport_tcp.hpp"

namespace ffw {

namespace {

std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

template <class T>
void append(std::vector<unsigned char>& out, T v) {
  const auto n = out.size();
  out.resize(n + sizeof(T));
  std::memcpy(out.data() + n, &v, sizeof(T));
}

/// A record's length field covers tag + seq + crc + payload. Anything
/// above this is a corrupted stream (a real one, not FaultPlan
/// corruption — that flips payload bytes above the transport), so we
/// abort rather than allocate garbage.
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

}  // namespace

void wire_encode(const WireFrame& f, std::vector<unsigned char>& out) {
  const std::uint32_t len = static_cast<std::uint32_t>(
      4 + 8 + 4 + f.payload.size());  // tag + seq + crc + payload
  append(out, len);
  append(out, static_cast<std::int32_t>(f.tag));
  append(out, f.seq);
  append(out, f.crc);
  out.insert(out.end(), f.payload.begin(), f.payload.end());
}

void FrameParser::feed(const unsigned char* p, std::size_t n,
                       const std::function<void(WireFrame)>& sink) {
  buf_.insert(buf_.end(), p, p + n);
  std::size_t off = 0;
  while (buf_.size() - off >= 4) {
    const std::uint32_t len = load_u32(buf_.data() + off);
    FFW_CHECK_MSG(len >= 16 && len <= kMaxRecordBytes,
                  "transport: corrupted wire stream (bad record length)");
    if (buf_.size() - off < 4 + static_cast<std::size_t>(len)) break;
    const unsigned char* rec = buf_.data() + off + 4;
    WireFrame f;
    std::int32_t tag;
    std::memcpy(&tag, rec, 4);
    f.tag = tag;
    f.seq = load_u64(rec + 4);
    f.crc = load_u32(rec + 12);
    f.payload.assign(rec + 16, rec + len);
    sink(std::move(f));
    off += 4 + static_cast<std::size_t>(len);
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off));
}

std::shared_ptr<Transport> make_transport(const std::string& name,
                                          int nranks) {
  if (name == "inproc") return std::make_shared<InProcTransport>(nranks);
  if (name == "shm")
    return std::make_shared<ShmRingTransport>(nranks,
                                              std::size_t{1} << 20);
  if (name == "tcp") {
    // Threads-mode loopback rendezvous: derive the port range from the
    // pid so concurrent test binaries on one machine don't collide.
    const int base = 20000 + static_cast<int>(::getpid() % 20000);
    return std::make_shared<TcpTransport>(
        nranks, loopback_endpoints(nranks, base), /*local_rank=*/-1);
  }
  FFW_CHECK_MSG(false, "unknown transport name (want inproc|shm|tcp)");
  return nullptr;
}

std::string default_transport_name() {
  const char* env = std::getenv("FFW_TRANSPORT");
  return env != nullptr && *env != '\0' ? env : "inproc";
}

}  // namespace ffw
