#include "vcluster/fault.hpp"

#include <array>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ffw {

namespace {

/// Slicing-by-8 CRC-32 tables (reflected 0xEDB88320). Built once; halo
/// panels are megabytes, so the byte-at-a-time variant would be the
/// dominant cost of the framing.
struct CrcTables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  CrcTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const CrcTables& crc_tables() {
  static const CrcTables tables;
  return tables;
}

/// splitmix64 finaliser: the per-field mixer of the decision hash.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Message-identity hash: every field goes through a full mix round so
/// that (src, dst) and (dst, src) or consecutive seqs share no stream.
std::uint64_t message_key(std::uint64_t seed, int src, int dst, int tag,
                          std::uint64_t seq) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) |
                 static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
                     << 32));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = mix64(h ^ seq);
  return h;
}

}  // namespace

std::uint32_t crc32(const unsigned char* p, std::size_t n,
                    std::uint32_t seed) {
  const auto& t = crc_tables().t;
  std::uint32_t c = ~seed;
  while (n >= 8) {
    // Little-endian 8-byte gather; bytes are consumed in address order,
    // so the result matches the byte-at-a-time loop below.
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                                  static_cast<std::uint32_t>(p[1]) << 8 |
                                  static_cast<std::uint32_t>(p[2]) << 16 |
                                  static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             static_cast<std::uint32_t>(p[5]) << 8 |
                             static_cast<std::uint32_t>(p[6]) << 16 |
                             static_cast<std::uint32_t>(p[7]) << 24;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
        t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  return ~c;
}

FaultAction fault_decide(const FaultPlan& plan, int src, int dst, int tag,
                         std::uint64_t seq) {
  const FaultSpec& spec = plan.spec_for(src, dst);
  if (!spec.any()) return FaultAction::kNone;
  Rng rng(message_key(plan.seed, src, dst, tag, seq));
  const double u = rng.uniform();
  double acc = spec.drop;
  if (u < acc) return FaultAction::kDrop;
  acc += spec.duplicate;
  if (u < acc) return FaultAction::kDuplicate;
  acc += spec.reorder;
  if (u < acc) return FaultAction::kReorder;
  acc += spec.corrupt;
  if (u < acc) return FaultAction::kCorrupt;
  return FaultAction::kNone;
}

std::size_t fault_corrupt_offset(const FaultPlan& plan, int src, int dst,
                                 std::uint64_t seq, std::size_t len) {
  FFW_CHECK(len > 0);
  // Distinct stream from fault_decide (tag slot replaced by a marker) so
  // the flipped byte is independent of the action draw.
  return static_cast<std::size_t>(
      message_key(plan.seed, src, dst, ~0, seq) % len);
}

}  // namespace ffw
