// Process-mode rank bootstrap and the ffw_launch supervisor
// (DESIGN.md Sec. 16).
//
// A worker process learns its place in the world from the environment
// ffw_launch (tools/ffw_launch.cpp) sets before exec:
//
//     FFW_RANK           this process's rank id
//     FFW_WORLD          world size
//     FFW_TRANSPORT      "shm" | "tcp"
//     FFW_SHM_NAME       shm: POSIX segment name ("/ffw-<pid>")
//     FFW_RING_BYTES     shm: per-edge ring capacity (optional)
//     FFW_HOSTFILE       tcp: host:port per rank, one line each
//     FFW_LAUNCH_ATTEMPT restart attempt number (0 on first launch) —
//                        workers use it to decide whether to resume
//                        from a checkpoint
//
// `bootstrap_from_env()` + `make_worker_cluster()` turn that into a
// process-mode VCluster hosting exactly FFW_RANK. `launch_processes()`
// is the supervisor: it spawns one worker per rank, waits, and on any
// abnormal exit (crash, kill -9, nonzero status) SIGKILLs the surviving
// siblings and relaunches the whole world with the attempt counter
// bumped — which is exactly the PR-5 checkpoint/supervisor recovery
// path, exercised against real process death instead of an injected
// RankFailure.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "vcluster/comm.hpp"

namespace ffw {

inline constexpr std::size_t kDefaultRingBytes = std::size_t{1} << 20;

/// A worker process's identity, parsed from the environment.
struct ProcessBootstrap {
  int rank = 0;
  int world = 1;
  std::string transport;  // "shm" | "tcp"
  std::string shm_name;
  std::size_t ring_bytes = kDefaultRingBytes;
  std::string hostfile;
  int attempt = 0;
};

/// Reads the FFW_* rank environment; empty when FFW_RANK is not set
/// (i.e. not running under ffw_launch).
std::optional<ProcessBootstrap> bootstrap_from_env();

/// Builds the cross-process transport named by the bootstrap (attaching
/// the shm segment or joining the TCP mesh; blocks until connected).
std::shared_ptr<Transport> make_worker_transport(const ProcessBootstrap& bs);

/// Process-mode cluster hosting exactly `bs.rank`.
std::unique_ptr<VCluster> make_worker_cluster(const ProcessBootstrap& bs);

/// Supervisor options for launch_processes().
struct LaunchOptions {
  int world = 1;
  std::string transport = "shm";  // "shm" | "tcp"
  /// shm segment name; defaults to "/ffw-<launcher pid>".
  std::string shm_name;
  std::size_t ring_bytes = kDefaultRingBytes;
  /// tcp: host file path; generated (loopback) when empty.
  std::string hostfile;
  /// tcp: first loopback port when generating; pid-derived when 0.
  int base_port = 0;
  /// Whole-world relaunches after an abnormal exit before giving up.
  int max_restarts = 2;
  /// Extra environment (name, value) for every worker.
  std::vector<std::pair<std::string, std::string>> extra_env;
};

/// Runs `command` (argv; resolved via PATH) once per rank with the
/// bootstrap environment set, supervising the process tree: any worker
/// dying abnormally gets the survivors SIGKILLed and the world
/// relaunched with FFW_LAUNCH_ATTEMPT + 1 (fresh shm segment), up to
/// max_restarts times. Returns 0 when every worker exited cleanly on
/// some attempt, nonzero otherwise.
int launch_processes(const LaunchOptions& opts,
                     const std::vector<std::string>& command);

}  // namespace ffw
