#include "vcluster/shm_ring.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <new>
#include <thread>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace ffw {

namespace {

constexpr std::uint64_t kSegMagic = 0x4646575348524e47ull;  // "FFWSHRNG"
constexpr std::size_t kCacheLine = 64;

/// FUTEX_WAIT with a relative timeout in microseconds (<=0: no wait).
/// Deliberately *not* FUTEX_PRIVATE: doorbells live in shared memory
/// and must wake across processes.
long futex_wait(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                int timeout_us) {
  if (timeout_us <= 0) return 0;
  timespec ts;
  ts.tv_sec = timeout_us / 1000000;
  ts.tv_nsec = static_cast<long>(timeout_us % 1000000) * 1000;
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
                 FUTEX_WAIT, expected, &ts, nullptr, 0);
}

long futex_wake_all(std::atomic<std::uint32_t>* addr) {
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
                 FUTEX_WAKE, INT_MAX, nullptr, nullptr, 0);
}

struct SegHeader {
  std::atomic<std::uint64_t> magic;
  std::uint32_t world;
  std::uint32_t reserved;
  std::uint64_t ring_bytes;
};

}  // namespace

/// One SPSC byte ring. head is the producer's write cursor, tail the
/// consumer's read cursor (both monotonically increasing; the data
/// index is cursor % capacity). Cursors sit on their own cache lines so
/// producer and consumer never false-share.
struct ShmRingTransport::Ring {
  alignas(kCacheLine) std::atomic<std::uint64_t> head;
  alignas(kCacheLine) std::atomic<std::uint64_t> tail;
  alignas(kCacheLine) unsigned char data[1];  // ring_bytes_ really

  std::size_t readable() const {
    return static_cast<std::size_t>(head.load(std::memory_order_acquire) -
                                    tail.load(std::memory_order_acquire));
  }
};

std::size_t ShmRingTransport::segment_bytes(int nranks,
                                            std::size_t ring_bytes) {
  const std::size_t hdr = (sizeof(SegHeader) + kCacheLine - 1) / kCacheLine *
                          kCacheLine;
  const std::size_t bells = static_cast<std::size_t>(nranks) * kCacheLine;
  const std::size_t ring_slot =
      (offsetof(Ring, data) + ring_bytes + kCacheLine - 1) / kCacheLine *
      kCacheLine;
  return hdr + bells +
         static_cast<std::size_t>(nranks) * nranks * ring_slot;
}

ShmRingTransport::Ring& ShmRingTransport::ring(int src, int dst) const {
  const std::size_t hdr = (sizeof(SegHeader) + kCacheLine - 1) / kCacheLine *
                          kCacheLine;
  const std::size_t bells = static_cast<std::size_t>(nranks_) * kCacheLine;
  const std::size_t ring_slot =
      (offsetof(Ring, data) + ring_bytes_ + kCacheLine - 1) / kCacheLine *
      kCacheLine;
  unsigned char* p = base_ + hdr + bells +
                     (static_cast<std::size_t>(src) * nranks_ + dst) *
                         ring_slot;
  return *reinterpret_cast<Ring*>(p);
}

std::atomic<std::uint32_t>& ShmRingTransport::bell(int dst) const {
  const std::size_t hdr = (sizeof(SegHeader) + kCacheLine - 1) / kCacheLine *
                          kCacheLine;
  return *reinterpret_cast<std::atomic<std::uint32_t>*>(
      base_ + hdr + static_cast<std::size_t>(dst) * kCacheLine);
}

void ShmRingTransport::init_segment() {
  // The segment arrives zeroed (value-initialised heap / ftruncate'd
  // shm); only the header needs explicit values. magic is stored last,
  // with release ordering, so a racing attacher that observes it also
  // observes the geometry.
  auto* hdr = reinterpret_cast<SegHeader*>(base_);
  hdr->world = static_cast<std::uint32_t>(nranks_);
  hdr->ring_bytes = ring_bytes_;
  hdr->magic.store(kSegMagic, std::memory_order_release);
}

ShmRingTransport::ShmRingTransport(int nranks, std::size_t ring_bytes)
    : nranks_(nranks), ring_bytes_(ring_bytes), heap_mode_(true) {
  FFW_CHECK(nranks >= 1 && ring_bytes >= 256);
  seg_bytes_ = segment_bytes(nranks, ring_bytes);
  base_ = static_cast<unsigned char*>(
      ::operator new(seg_bytes_, std::align_val_t{kCacheLine}));
  std::memset(base_, 0, seg_bytes_);
  init_segment();
  edge_send_mu_.resize(static_cast<std::size_t>(nranks) * nranks);
  for (auto& m : edge_send_mu_) m = std::make_unique<std::mutex>();
  edge_parser_.resize(static_cast<std::size_t>(nranks) * nranks);
}

ShmRingTransport::ShmRingTransport(int nranks, std::size_t ring_bytes,
                                   const std::string& shm_name,
                                   int local_rank)
    : nranks_(nranks),
      ring_bytes_(ring_bytes),
      local_rank_(local_rank) {
  FFW_CHECK(nranks >= 1 && ring_bytes >= 256);
  FFW_CHECK(local_rank >= -1 && local_rank < nranks);
  seg_bytes_ = segment_bytes(nranks, ring_bytes);
  attach_shm(shm_name);
  edge_send_mu_.resize(static_cast<std::size_t>(nranks) * nranks);
  for (auto& m : edge_send_mu_) m = std::make_unique<std::mutex>();
  edge_parser_.resize(static_cast<std::size_t>(nranks) * nranks);
}

void ShmRingTransport::attach_shm(const std::string& name) {
  // First try to create the segment outright; exactly one attacher wins
  // the O_EXCL race and initialises, everyone else opens the existing
  // segment and spins until the winner publishes the magic.
  bool creator = false;
  shm_fd_ = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (shm_fd_ >= 0) {
    creator = true;
    FFW_CHECK_MSG(::ftruncate(shm_fd_, static_cast<off_t>(seg_bytes_)) == 0,
                  "shm-ring: ftruncate failed");
  } else {
    for (int tries = 0; shm_fd_ < 0; ++tries) {
      shm_fd_ = ::shm_open(name.c_str(), O_RDWR, 0600);
      FFW_CHECK_MSG(tries < 10000, "shm-ring: segment never appeared");
      if (shm_fd_ < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // The creator may still be mid-ftruncate; wait for full size.
    struct stat st{};
    for (int tries = 0;; ++tries) {
      FFW_CHECK(::fstat(shm_fd_, &st) == 0);
      if (static_cast<std::size_t>(st.st_size) >= seg_bytes_) break;
      FFW_CHECK_MSG(tries < 10000, "shm-ring: segment never sized");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  void* p = ::mmap(nullptr, seg_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                   shm_fd_, 0);
  FFW_CHECK_MSG(p != MAP_FAILED, "shm-ring: mmap failed");
  base_ = static_cast<unsigned char*>(p);
  auto* hdr = reinterpret_cast<SegHeader*>(base_);
  if (creator) {
    init_segment();
  } else {
    for (int tries = 0;
         hdr->magic.load(std::memory_order_acquire) != kSegMagic; ++tries) {
      FFW_CHECK_MSG(tries < 10000, "shm-ring: segment never initialised");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FFW_CHECK_MSG(hdr->world == static_cast<std::uint32_t>(nranks_) &&
                      hdr->ring_bytes == ring_bytes_,
                  "shm-ring: segment geometry mismatch (stale segment?)");
  }
}

ShmRingTransport::~ShmRingTransport() {
  if (heap_mode_) {
    ::operator delete(base_, std::align_val_t{kCacheLine});
  } else {
    if (base_) ::munmap(base_, seg_bytes_);
    if (shm_fd_ >= 0) ::close(shm_fd_);
    // The segment itself is shm_unlink'ed by whoever created the name
    // (ffw_launch, or the test harness); workers only detach.
  }
}

SendStatus ShmRingTransport::send(int src, int dst, WireFrame frame,
                                  int deadline_ms) {
  std::vector<unsigned char> rec;
  rec.reserve(wire_record_bytes(frame.payload.size()));
  wire_encode(frame, rec);

  std::lock_guard lk(*edge_send_mu_[static_cast<std::size_t>(src) * nranks_ +
                                    dst]);
  Ring& r = ring(src, dst);
  const auto deadline =
      deadline_ms > 0 ? std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(deadline_ms)
                      : std::chrono::steady_clock::time_point::max();
  std::size_t off = 0;
  int backoff_us = 20;
  while (off < rec.size()) {
    const std::uint64_t head = r.head.load(std::memory_order_relaxed);
    const std::uint64_t tail = r.tail.load(std::memory_order_acquire);
    const std::size_t free_bytes =
        ring_bytes_ - static_cast<std::size_t>(head - tail);
    if (free_bytes == 0) {
      // Full ring: the consumer is behind (or dead). Stream what fit,
      // back off, retry until space frees or the deadline expires.
      stalls_.fetch_add(1, std::memory_order_relaxed);
      obs::add(obs::Counter::kRingFullStalls, 1);
      if (std::chrono::steady_clock::now() >= deadline)
        return SendStatus::kTimeout;
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = std::min(backoff_us * 2, 500);
      continue;
    }
    const std::size_t n = std::min(free_bytes, rec.size() - off);
    const std::size_t at = static_cast<std::size_t>(head % ring_bytes_);
    const std::size_t first = std::min(n, ring_bytes_ - at);
    std::memcpy(r.data + at, rec.data() + off, first);
    if (n > first) std::memcpy(r.data, rec.data() + off + first, n - first);
    r.head.store(head + n, std::memory_order_release);
    off += n;
    // Ring the destination doorbell and wake a parked consumer.
    bell(dst).fetch_add(1, std::memory_order_release);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    obs::add(obs::Counter::kTransportSyscalls, 1);
    futex_wake_all(&bell(dst));
  }
  wire_bytes_.fetch_add(rec.size(), std::memory_order_relaxed);
  obs::add(obs::Counter::kTransportWireBytes, rec.size());
  return SendStatus::kOk;
}

std::size_t ShmRingTransport::drain(
    int dst, const std::function<void(int src, WireFrame)>& sink) {
  std::size_t frames = 0;
  std::vector<unsigned char> chunk;
  for (int src = 0; src < nranks_; ++src) {
    if (src == dst) continue;
    Ring& r = ring(src, dst);
    for (;;) {
      const std::uint64_t head = r.head.load(std::memory_order_acquire);
      const std::uint64_t tail = r.tail.load(std::memory_order_relaxed);
      const std::size_t avail = static_cast<std::size_t>(head - tail);
      if (avail == 0) break;
      chunk.resize(avail);
      const std::size_t at = static_cast<std::size_t>(tail % ring_bytes_);
      const std::size_t first = std::min(avail, ring_bytes_ - at);
      std::memcpy(chunk.data(), r.data + at, first);
      if (avail > first) std::memcpy(chunk.data() + first, r.data, avail - first);
      r.tail.store(tail + avail, std::memory_order_release);
      edge_parser_[static_cast<std::size_t>(src) * nranks_ + dst].feed(
          chunk.data(), chunk.size(), [&](WireFrame f) {
            ++frames;
            sink(src, std::move(f));
          });
    }
  }
  return frames;
}

void ShmRingTransport::wait_frames(int dst, int timeout_us) {
  const std::uint32_t v = bell(dst).load(std::memory_order_acquire);
  // Re-check after sampling the doorbell: anything that arrived before
  // the sample is visible in a ring; anything after bumps the bell and
  // turns the futex wait into an immediate EAGAIN. No lost wakeups.
  for (int src = 0; src < nranks_; ++src) {
    if (src != dst && ring(src, dst).readable() > 0) return;
  }
  syscalls_.fetch_add(1, std::memory_order_relaxed);
  obs::add(obs::Counter::kTransportSyscalls, 1);
  futex_wait(&bell(dst), v, timeout_us);
}

void ShmRingTransport::wake_all() {
  for (int d = 0; d < nranks_; ++d) {
    bell(d).fetch_add(1, std::memory_order_release);
    futex_wake_all(&bell(d));
  }
}

void ShmRingTransport::reset() {
  // Discard undelivered bytes: fast-forward every consumer cursor and
  // drop stream-parser staging so the next run's seq-0 frames meet
  // empty reorder buffers.
  for (int s = 0; s < nranks_; ++s) {
    for (int d = 0; d < nranks_; ++d) {
      if (s == d) continue;
      Ring& r = ring(s, d);
      r.tail.store(r.head.load(std::memory_order_acquire),
                   std::memory_order_release);
    }
  }
  for (auto& p : edge_parser_) p = FrameParser{};
}

TransportCounters ShmRingTransport::counters() const {
  return TransportCounters{syscalls_.load(std::memory_order_relaxed),
                           stalls_.load(std::memory_order_relaxed),
                           wire_bytes_.load(std::memory_order_relaxed)};
}

}  // namespace ffw
