// TCP socket-mesh transport: one connection per unordered rank pair,
// length-prefixed wire records (transport.hpp), nonblocking sends with
// per-edge pending buffers for backpressure (DESIGN.md Sec. 16).
//
// Rendezvous: every rank gets a "host:port" endpoint, either from a
// host file (one line per rank — multi-machine runs via ffw_launch
// --hostfile) or auto-generated loopback endpoints in threads mode.
// Rank r listens on its own endpoint; for each pair (lo, hi) the
// *higher* rank connects to the lower rank's listener and identifies
// itself with a 4-byte hello, so exactly one socket exists per pair
// regardless of startup order. Connect retries cover listeners that are
// not up yet.
//
// Failure semantics: EOF/ECONNRESET on a peer's socket marks that rank
// dead (peer_dead()); the comm layer's polled wait turns that into a
// fail-fast RankFailure instead of hanging in a blocking read — the
// satellite-1 regression (tests/transport_test.cpp) pins this down.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "vcluster/transport.hpp"

namespace ffw {

/// One rank's rendezvous endpoint.
struct TcpEndpoint {
  std::string host;
  int port = 0;
};

/// Parses a host file: one "host:port" line per rank, '#' comments and
/// blank lines skipped. Aborts if fewer than `nranks` entries remain.
std::vector<TcpEndpoint> parse_hostfile(const std::string& path, int nranks);

/// Loopback endpoints for a single-node world: ports base..base+n-1.
std::vector<TcpEndpoint> loopback_endpoints(int nranks, int base_port);

class TcpTransport final : public Transport {
 public:
  /// Builds the mesh for the ranks this instance hosts: all of them
  /// (threads mode, `local_rank` == -1) or exactly one (process mode).
  /// Blocks until every hosted rank is fully connected.
  TcpTransport(int nranks, std::vector<TcpEndpoint> endpoints,
               int local_rank);
  ~TcpTransport() override;

  const char* name() const override { return "tcp"; }
  int size() const override { return nranks_; }

  SendStatus send(int src, int dst, WireFrame frame,
                  int deadline_ms) override;
  std::size_t drain(
      int dst, const std::function<void(int src, WireFrame)>& sink) override;
  void wait_frames(int dst, int timeout_us) override;
  void wake_all() override;
  void reset() override;
  bool peer_dead(int rank) const override;
  TransportCounters counters() const override;

 private:
  /// Per-peer connection state of one hosted rank. `fd` carries both
  /// directions of the pair; `pending` holds outbound bytes the socket
  /// would not take (backpressure).
  struct Edge {
    int fd = -1;
    std::mutex mu;               // serialises writers on this edge
    std::vector<unsigned char> pending;
    FrameParser parser;
    std::atomic<bool> dead{false};
  };
  /// One hosted rank: its peer edges plus an eventfd that wake_all()
  /// pokes to interrupt a poll().
  struct Host {
    std::vector<std::unique_ptr<Edge>> edges;  // size nranks, self unused
    int wake_fd = -1;
  };

  bool hosted(int rank) const;
  Edge& edge(int rank, int peer) const;
  void connect_peers(int rank);
  void accept_peers(int rank);
  /// Flushes `e.pending` as far as the socket allows. Returns false
  /// once the connection is dead.
  bool flush_pending(Edge& e);
  void mark_dead(Edge& e);

  int nranks_;
  int local_rank_;  // -1 = all ranks hosted
  std::vector<TcpEndpoint> endpoints_;
  std::vector<int> listen_fds_;              // per hosted rank
  std::vector<std::unique_ptr<Host>> hosts_; // size nranks, null if not hosted

  mutable std::atomic<std::uint64_t> syscalls_{0};
  mutable std::atomic<std::uint64_t> stalls_{0};
  mutable std::atomic<std::uint64_t> wire_bytes_{0};
};

}  // namespace ffw
