#include "vcluster/comm.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <string>

#include "obs/obs.hpp"

namespace ffw {

std::uint64_t TrafficStats::total_bytes() const {
  std::uint64_t s = 0;
  for (auto b : bytes) s += b;
  return s;
}

std::uint64_t TrafficStats::total_messages() const {
  std::uint64_t s = 0;
  for (auto m : messages) s += m;
  return s;
}

std::uint64_t TrafficStats::max_rank_bytes() const {
  std::uint64_t best = 0;
  for (int r = 0; r < nranks; ++r) {
    std::uint64_t s = 0;
    for (int o = 0; o < nranks; ++o) {
      s += bytes[static_cast<std::size_t>(r) * nranks + o];
      s += bytes[static_cast<std::size_t>(o) * nranks + r];
    }
    best = std::max(best, s);
  }
  return best;
}

// The logical frame header the ledger accounts must be exactly what the
// wire records of the polled transports carry.
static_assert(VCluster::kFrameBytes == kWireHeaderBytes);

VCluster::VCluster(int nranks)
    : VCluster(nranks, make_transport(default_transport_name(), nranks),
               /*local_rank=*/-1) {}

VCluster::VCluster(int nranks, std::shared_ptr<Transport> transport)
    : VCluster(nranks, std::move(transport), /*local_rank=*/-1) {}

VCluster::VCluster(int nranks, std::shared_ptr<Transport> transport,
                   int local_rank)
    : nranks_(nranks), transport_(std::move(transport)),
      local_rank_(local_rank) {
  FFW_CHECK(nranks >= 1);
  FFW_CHECK(transport_ != nullptr && transport_->size() == nranks);
  FFW_CHECK(local_rank >= -1 && local_rank < nranks);
  FFW_CHECK_MSG(local_rank < 0 || !transport_->direct_delivery(),
                "process mode needs a cross-process transport");
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) boxes_.push_back(std::make_unique<Mailbox>());
  bytes_.assign(static_cast<std::size_t>(nranks) * nranks, 0);
  messages_.assign(static_cast<std::size_t>(nranks) * nranks, 0);
  rank_sends_.assign(static_cast<std::size_t>(nranks), 0);
  blocked_.resize(static_cast<std::size_t>(nranks));
  transport_->set_deliver([this](int src, int dst, WireFrame f) {
    deliver(dst, src, f.tag, Frame{f.seq, f.crc, std::move(f.payload)});
  });
}

void VCluster::run(const std::function<void(Comm&)>& rank_main) {
  FFW_CHECK_MSG(!aborted(),
                "VCluster::run after a failed run; call recover() first");
  if (!hosts_all()) {
    // Process mode: this instance hosts exactly one rank; run it on the
    // calling thread. Failure propagation is local — a remote rank's
    // death surfaces through the transport (dead connection) or the
    // deadline, and a supervisor above the process tree (ffw_launch)
    // handles cluster-wide restart.
    obs::set_rank(local_rank_);
    Comm comm(this, local_rank_);
    try {
      rank_main(comm);
    } catch (const ClusterAborted&) {
      std::lock_guard lk(fail_mu_);
      if (!first_failure_) first_failure_ = std::current_exception();
    } catch (const CommFailure&) {
      {
        std::lock_guard lk(fail_mu_);
        if (!first_failure_primary_) {
          first_failure_ = std::current_exception();
          first_failure_primary_ = true;
        }
      }
      poison();
    }
    std::vector<std::thread> pending;
    {
      std::lock_guard lk(delay_mu_);
      pending.swap(delay_threads_);
    }
    for (auto& t : pending) t.join();
    std::exception_ptr failure;
    {
      std::lock_guard lk(fail_mu_);
      failure = first_failure_;
    }
    if (failure) std::rethrow_exception(failure);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &rank_main] {
      // Tag the rank thread for the obs subsystem so spans/counters
      // recorded inside rank_main attribute to this rank (no-op while
      // tracing is disabled).
      obs::set_rank(r);
      Comm comm(this, r);
      try {
        rank_main(comm);
      } catch (const ClusterAborted&) {
        // Secondary: some other rank failed first and poisoned us. Only
        // recorded if no primary failure ever surfaces.
        std::lock_guard lk(fail_mu_);
        if (!first_failure_) first_failure_ = std::current_exception();
      } catch (const CommFailure&) {
        {
          std::lock_guard lk(fail_mu_);
          if (!first_failure_primary_) {
            first_failure_ = std::current_exception();
            first_failure_primary_ = true;
          }
        }
        poison();
      }
      // Anything else (including FFW_CHECK) stays fail-fast: it escapes
      // the rank thread and terminates the process.
    });
  }
  for (auto& t : threads) t.join();
  // Rank threads spawn delayed deliveries but have all joined, so the
  // set below is final; join it so no delivery outlives the run.
  std::vector<std::thread> pending;
  {
    std::lock_guard lk(delay_mu_);
    pending.swap(delay_threads_);
  }
  for (auto& t : pending) t.join();

  std::exception_ptr failure;
  {
    std::lock_guard lk(fail_mu_);
    failure = first_failure_;
  }
  if (failure) std::rethrow_exception(failure);
}

void VCluster::set_send_delay(std::function<int(int, int, int)> delay_us) {
  delay_fn_ = std::move(delay_us);
}

void VCluster::install_fault_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  plan_active_ = plan_.all.any() || !plan_.per_edge.empty() ||
                 !plan_.crashes.empty() || !plan_.stalls.empty();
  crash_fired_.assign(plan_.crashes.size(), false);
  stall_fired_.assign(plan_.stalls.size(), false);
}

FaultStats VCluster::fault_stats() const {
  std::lock_guard lk(fault_mu_);
  return fault_stats_;
}

void VCluster::set_send_hook(
    std::function<void(int rank, std::uint64_t nsend)> hook) {
  send_hook_ = std::move(hook);
}

void VCluster::set_comm_options(CommOptions opts) { opts_ = opts; }

void VCluster::recover() {
  aborted_.store(false, std::memory_order_release);
  {
    std::lock_guard lk(fail_mu_);
    first_failure_ = nullptr;
    first_failure_primary_ = false;
  }
  for (auto& box : boxes_) {
    std::lock_guard lk(box->mu);
    box->q.clear();
  }
  {
    std::lock_guard lk(bar_mu_);
    bar_count_ = 0;
    ++bar_gen_;  // any stale waiter (there are none; threads joined) frees
  }
  {
    // Fresh sequence space for the next run; rank_sends_ and the fired
    // crash/stall flags survive so consumed triggers do not re-fire.
    std::lock_guard lk(stats_mu_);
    edge_seq_.clear();
  }
  {
    std::lock_guard lk(blocked_mu_);
    for (auto& b : blocked_) b = BlockedState{};
  }
  // Polled transports may still hold undelivered bytes of the failed
  // run (rings, parser staging, pending outbound buffers); drop them so
  // the fresh sequence space above meets empty reorder buffers.
  transport_->reset();
}

TrafficStats VCluster::traffic() const {
  std::lock_guard lk(stats_mu_);
  return TrafficStats{nranks_, bytes_, messages_};
}

void VCluster::reset_traffic() {
  std::lock_guard lk(stats_mu_);
  std::fill(bytes_.begin(), bytes_.end(), 0);
  std::fill(messages_.begin(), messages_.end(), 0);
  by_tag_.clear();
  frame_bytes_ = 0;
}

TagTraffic VCluster::tag_traffic(int tag) const {
  std::lock_guard lk(stats_mu_);
  const auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? TagTraffic{} : it->second;
}

std::map<int, TagTraffic> VCluster::traffic_by_tag() const {
  std::lock_guard lk(stats_mu_);
  return by_tag_;
}

std::uint64_t VCluster::frame_overhead_bytes() const {
  std::lock_guard lk(stats_mu_);
  return frame_bytes_;
}

void VCluster::deposit(int src, int dst, int tag,
                       std::vector<unsigned char> bytes) {
  if (plan_active_ || send_hook_) {
    // Crash/stall triggers key off the cumulative per-rank send counter
    // and fire *before* accounting: a crashed send never reaches the
    // wire. The counter and the fired flags survive recover(), so a
    // recovered run resumes counting where the dead rank stopped and a
    // consumed crash cannot re-fire. The send hook sees the same
    // counter, so a test can kill a real process at "send #N" exactly
    // where an injected FaultSpec would have crashed a thread.
    std::uint64_t nsend;
    int stall_us = 0;
    bool crash = false;
    {
      std::lock_guard lk(stats_mu_);
      nsend = ++rank_sends_[static_cast<std::size_t>(src)];
      for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
        if (!crash_fired_[i] && plan_.crashes[i].rank == src &&
            plan_.crashes[i].at_send == nsend) {
          crash_fired_[i] = true;
          crash = true;
        }
      }
      for (std::size_t i = 0; i < plan_.stalls.size(); ++i) {
        if (!stall_fired_[i] && plan_.stalls[i].rank == src &&
            plan_.stalls[i].at_send == nsend) {
          stall_fired_[i] = true;
          stall_us += plan_.stalls[i].duration_us;
        }
      }
    }
    if (send_hook_) send_hook_(src, nsend);
    if (crash) {
      {
        std::lock_guard lk(fault_mu_);
        ++fault_stats_.crashes;
      }
      obs::add(obs::Counter::kFaultsInjected, 1);
      throw RankFailure(src, "injected crash: rank " + std::to_string(src) +
                                 " at send #" + std::to_string(nsend));
    }
    if (stall_us > 0) {
      {
        std::lock_guard lk(fault_mu_);
        ++fault_stats_.stalls;
      }
      obs::add(obs::Counter::kFaultsInjected, 1);
      std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
    }
  }

  Frame frame;
  frame.crc = crc32(bytes.data(), bytes.size());
  frame.bytes = std::move(bytes);
  {
    // Traffic is accounted at send time — a delivery delay changes when a
    // message is *seen*, never what goes on the wire. The ledger counts
    // payload bytes only; the 12-byte frame header accumulates into
    // frame_bytes_ so framing never perturbs per-tag wire comparisons.
    std::lock_guard lk(stats_mu_);
    const std::size_t e = static_cast<std::size_t>(src) * nranks_ + dst;
    bytes_[e] += frame.bytes.size();
    messages_[e] += 1;
    TagTraffic& tt = by_tag_[tag];
    tt.bytes += frame.bytes.size();
    tt.messages += 1;
    frame_bytes_ += kFrameBytes;
    frame.seq = edge_seq_[{src, dst, tag}]++;
  }

  int extra_delay_us = 0;
  if (plan_active_) {
    switch (fault_decide(plan_, src, dst, tag, frame.seq)) {
      case FaultAction::kNone:
        break;
      case FaultAction::kDrop: {
        std::lock_guard lk(fault_mu_);
        ++fault_stats_.drops;
        obs::add(obs::Counter::kFaultsInjected, 1);
        return;  // accounted, never delivered
      }
      case FaultAction::kDuplicate: {
        {
          std::lock_guard lk(fault_mu_);
          ++fault_stats_.duplicates;
        }
        obs::add(obs::Counter::kFaultsInjected, 1);
        ship(src, dst, tag, frame, true);  // same seq: receiver discards one
        break;
      }
      case FaultAction::kReorder: {
        {
          std::lock_guard lk(fault_mu_);
          ++fault_stats_.reorders;
        }
        obs::add(obs::Counter::kFaultsInjected, 1);
        extra_delay_us = plan_.spec_for(src, dst).reorder_hold_us;
        break;
      }
      case FaultAction::kCorrupt: {
        if (!frame.bytes.empty()) {
          {
            std::lock_guard lk(fault_mu_);
            ++fault_stats_.corruptions;
          }
          obs::add(obs::Counter::kFaultsInjected, 1);
          // Flip after the CRC stamp so the receiver detects it.
          frame.bytes[fault_corrupt_offset(plan_, src, dst, frame.seq,
                                           frame.bytes.size())] ^= 0x01u;
        }
        break;
      }
    }
  }

  const int delay_us =
      (delay_fn_ ? delay_fn_(src, dst, tag) : 0) + extra_delay_us;
  if (delay_us <= 0) {
    ship(src, dst, tag, std::move(frame), true);
    return;
  }
  std::lock_guard lk(delay_mu_);
  delay_threads_.emplace_back(
      [this, src, dst, tag, delay_us, f = std::move(frame)]() mutable {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        ship(src, dst, tag, std::move(f), /*on_rank_thread=*/false);
      });
}

void VCluster::ship(int src, int dst, int tag, Frame frame,
                    bool on_rank_thread) {
  WireFrame wf{tag, frame.seq, frame.crc, std::move(frame.bytes)};
  const SendStatus st =
      transport_->send(src, dst, std::move(wf), opts_.deadline_ms);
  if (st == SendStatus::kOk || !on_rank_thread) return;
  // Failures surface only on the sending rank's thread; a delayed-
  // delivery thread swallows them (the receiver's own dead-peer or
  // deadline check reports the loss).
  if (st == SendStatus::kPeerDead) {
    throw RankFailure(dst, "rank " + std::to_string(dst) +
                               " is dead (connection lost) while rank " +
                               std::to_string(src) + " sent tag " +
                               std::to_string(tag));
  }
  deadline_abort(src, "send");
}

void VCluster::pump(int rank) {
  transport_->drain(rank, [this, rank](int src, WireFrame f) {
    deliver(rank, src, f.tag, Frame{f.seq, f.crc, std::move(f.payload)});
  });
}

void VCluster::deliver(int dst, int src, int tag, Frame frame) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lk(box.mu);
    EdgeQueue& eq = box.q[{src, tag}];
    if (frame.seq < eq.next_commit) return;  // duplicate of a committed frame
    if (frame.seq == eq.next_commit) {
      // In-order arrival: commit, then flush any held successors.
      eq.ready.push_back(std::move(frame));
      ++eq.next_commit;
      auto it = eq.held.begin();
      while (it != eq.held.end() && it->first == eq.next_commit) {
        eq.ready.push_back(std::move(it->second));
        ++eq.next_commit;
        it = eq.held.erase(it);
      }
    } else {
      // Out-of-order: park until the gap fills. try_emplace discards a
      // duplicate of an already-held frame.
      eq.held.try_emplace(frame.seq, std::move(frame));
    }
  }
  box.cv.notify_all();
}

void VCluster::publish_blocked(int rank, BlockedState::Kind kind,
                               std::vector<std::pair<int, int>> keys) {
  std::lock_guard lk(blocked_mu_);
  blocked_[static_cast<std::size_t>(rank)] = {kind, std::move(keys)};
}

void VCluster::clear_blocked(int rank) {
  std::lock_guard lk(blocked_mu_);
  blocked_[static_cast<std::size_t>(rank)] = BlockedState{};
}

std::string VCluster::wait_for_report(int aborting_rank,
                                      const char* waiting_in) {
  using Kind = BlockedState::Kind;
  const auto kind_name = [](Kind k) {
    switch (k) {
      case Kind::kRecv: return "recv";
      case Kind::kWaitAny: return "wait_any";
      case Kind::kBarrier: return "barrier";
      default: return "none";
    }
  };
  std::vector<BlockedState> blocked;
  {
    std::lock_guard lk(blocked_mu_);
    blocked = blocked_;
  }

  std::string out = "[vcluster] deadline exceeded: rank " +
                    std::to_string(aborting_rank) + " blocked in " +
                    waiting_in + " for " + std::to_string(opts_.deadline_ms) +
                    " ms\n";

  // waits_on[r] = set of ranks r cannot progress without.
  std::vector<std::vector<int>> waits_on(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    const BlockedState& b = blocked[static_cast<std::size_t>(r)];
    if (b.kind == Kind::kNone) continue;
    out += "  rank " + std::to_string(r) + ": blocked in " +
           kind_name(b.kind);
    if (b.kind == Kind::kBarrier) {
      for (int o = 0; o < nranks_; ++o) {
        if (o != r && blocked[static_cast<std::size_t>(o)].kind != Kind::kBarrier)
          waits_on[static_cast<std::size_t>(r)].push_back(o);
      }
      out += "\n";
      continue;
    }
    Mailbox& box = *boxes_[static_cast<std::size_t>(r)];
    std::lock_guard lk(box.mu);
    for (const auto& [src, tag] : b.keys) {
      const auto it = box.q.find({src, tag});
      const EdgeQueue* eq = it == box.q.end() ? nullptr : &it->second;
      const std::size_t ready = eq ? eq->ready.size() : 0;
      out += " on (src=" + std::to_string(src) +
             ", tag=" + std::to_string(tag) + ") [ready " +
             std::to_string(ready) + ", held " +
             std::to_string(eq ? eq->held.size() : 0);
      if (eq && !eq->held.empty())
        out += ", seq " + std::to_string(eq->next_commit) + " missing";
      out += "]";
      if (ready == 0) waits_on[static_cast<std::size_t>(r)].push_back(src);
    }
    out += "\n";
  }

  // Walk from the aborting rank following first unsatisfied dependencies;
  // with <= nranks_ hops we either revisit a rank (cycle) or dead-end.
  std::vector<int> path{aborting_rank};
  std::vector<char> on_path(static_cast<std::size_t>(nranks_), 0);
  on_path[static_cast<std::size_t>(aborting_rank)] = 1;
  int cycle_at = -1;
  while (true) {
    const auto& deps = waits_on[static_cast<std::size_t>(path.back())];
    if (deps.empty()) break;
    const int next = deps.front();
    if (on_path[static_cast<std::size_t>(next)]) {
      cycle_at = next;
      path.push_back(next);
      break;
    }
    on_path[static_cast<std::size_t>(next)] = 1;
    path.push_back(next);
  }
  if (cycle_at >= 0) {
    std::size_t first = 0;
    while (path[first] != cycle_at) ++first;
    out += "  wait-for cycle: ";
    for (std::size_t i = first; i < path.size(); ++i) {
      if (i > first) out += " -> ";
      out += "rank " + std::to_string(path[i]);
    }
    out += "\n";
  } else {
    out += "  no wait-for cycle from rank " + std::to_string(aborting_rank) +
           " (waiting on a rank that is not blocked, or on a dropped "
           "message)\n";
  }
  return out;
}

void VCluster::deadline_abort(int rank, const char* waiting_in) {
  const std::string report = wait_for_report(rank, waiting_in);
  std::fputs(report.c_str(), stderr);
  obs::add(obs::Counter::kDeadlineAborts, 1);
  clear_blocked(rank);
  throw DeadlineExceeded(rank, report);
}

void VCluster::poison() {
  aborted_.store(true, std::memory_order_release);
  for (auto& box : boxes_) {
    std::lock_guard lk(box->mu);
    box->cv.notify_all();
  }
  {
    std::lock_guard lk(bar_mu_);
    bar_cv_.notify_all();
  }
  transport_->wake_all();  // unpark ranks sitting in wait_frames
}

void VCluster::throw_cluster_aborted(int rank) const {
  throw ClusterAborted(rank, "cluster aborted: another rank failed first");
}

int Comm::size() const { return owner_->size(); }

void Comm::send_bytes(int dst, int tag, const unsigned char* p,
                      std::size_t n) {
  FFW_CHECK(dst >= 0 && dst < size());
  FFW_CHECK_MSG(dst != rank_, "self-sends are not supported; keep local data local");
  if (owner_->aborted()) owner_->throw_cluster_aborted(rank_);
  // Bridge wire volume into the per-rank obs counters (the per-tag
  // TagTraffic ledger below stays the source of truth for tests).
  obs::add(obs::Counter::kWireBytes, n);
  owner_->deposit(rank_, dst, tag, std::vector<unsigned char>(p, p + n));
}

std::vector<unsigned char> Comm::recv_bytes(int src, int tag) {
  FFW_CHECK(src >= 0 && src < size());
  if (!owner_->transport_->direct_delivery())
    return recv_bytes_polled(src, tag);
  VCluster::Mailbox& box = *owner_->boxes_[static_cast<std::size_t>(rank_)];
  const auto key = std::make_pair(src, tag);
  owner_->publish_blocked(rank_, VCluster::BlockedState::Kind::kRecv, {key});
  std::unique_lock lk(box.mu);
  const auto pred = [&] {
    if (owner_->aborted()) return true;
    const auto it = box.q.find(key);
    return it != box.q.end() && !it->second.ready.empty();
  };
  if (owner_->opts_.deadline_ms > 0) {
    const auto dl = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(owner_->opts_.deadline_ms);
    if (!box.cv.wait_until(lk, dl, pred)) {
      lk.unlock();
      owner_->deadline_abort(rank_, "recv");
    }
  } else {
    box.cv.wait(lk, pred);
  }
  owner_->clear_blocked(rank_);
  if (owner_->aborted()) {
    lk.unlock();
    owner_->throw_cluster_aborted(rank_);
  }
  auto it = box.q.find(key);
  VCluster::Frame frame = std::move(it->second.ready.front());
  it->second.ready.pop_front();
  lk.unlock();
  if (crc32(frame.bytes.data(), frame.bytes.size()) != frame.crc) {
    obs::add(obs::Counter::kCrcFailures, 1);
    throw CorruptMessage(
        rank_, "CRC mismatch on message (src=" + std::to_string(src) +
                   ", tag=" + std::to_string(tag) +
                   ", seq=" + std::to_string(frame.seq) + ", " +
                   std::to_string(frame.bytes.size()) + " bytes)");
  }
  return std::move(frame.bytes);
}

namespace {
/// Bounded park interval for polled waits: short enough that aborted /
/// dead-peer / deadline checks stay responsive, long enough that an
/// idle rank costs ~500 syscalls/s, not a spin. Doorbells (futex /
/// poll) end a slice early the moment bytes arrive.
constexpr int kPollSliceUs = 2000;
}  // namespace

std::vector<unsigned char> Comm::recv_bytes_polled(int src, int tag) {
  VCluster::Mailbox& box = *owner_->boxes_[static_cast<std::size_t>(rank_)];
  const auto key = std::make_pair(src, tag);
  owner_->publish_blocked(rank_, VCluster::BlockedState::Kind::kRecv, {key});
  const bool armed = owner_->opts_.deadline_ms > 0;
  const auto dl = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(owner_->opts_.deadline_ms);
  VCluster::Frame frame;
  for (;;) {
    owner_->pump(rank_);
    {
      std::lock_guard lk(box.mu);
      const auto it = box.q.find(key);
      if (it != box.q.end() && !it->second.ready.empty()) {
        frame = std::move(it->second.ready.front());
        it->second.ready.pop_front();
        break;
      }
    }
    if (owner_->aborted()) {
      owner_->clear_blocked(rank_);
      owner_->throw_cluster_aborted(rank_);
    }
    if (owner_->transport_->peer_dead(src)) {
      // The connection is gone: nothing more can arrive on this edge.
      // One final pump covers frames that raced the death; then fail
      // fast instead of burning the whole deadline on a dead socket.
      owner_->pump(rank_);
      std::lock_guard lk(box.mu);
      const auto it = box.q.find(key);
      if (it == box.q.end() || it->second.ready.empty()) {
        owner_->clear_blocked(rank_);
        throw RankFailure(src, "rank " + std::to_string(src) +
                                   " died (connection lost) while rank " +
                                   std::to_string(rank_) +
                                   " waited on (src=" + std::to_string(src) +
                                   ", tag=" + std::to_string(tag) + ")");
      }
      continue;
    }
    if (armed && std::chrono::steady_clock::now() >= dl)
      owner_->deadline_abort(rank_, "recv");
    owner_->transport_->wait_frames(rank_, kPollSliceUs);
  }
  owner_->clear_blocked(rank_);
  if (crc32(frame.bytes.data(), frame.bytes.size()) != frame.crc) {
    obs::add(obs::Counter::kCrcFailures, 1);
    throw CorruptMessage(
        rank_, "CRC mismatch on message (src=" + std::to_string(src) +
                   ", tag=" + std::to_string(tag) +
                   ", seq=" + std::to_string(frame.seq) + ", " +
                   std::to_string(frame.bytes.size()) + " bytes)");
  }
  return std::move(frame.bytes);
}

bool Comm::probe(int src, int tag) {
  if (!owner_->transport_->direct_delivery()) owner_->pump(rank_);
  VCluster::Mailbox& box = *owner_->boxes_[static_cast<std::size_t>(rank_)];
  std::lock_guard lk(box.mu);
  auto it = box.q.find({src, tag});
  return it != box.q.end() && !it->second.ready.empty();
}

std::size_t Comm::wait_any(std::span<const std::pair<int, int>> keys) {
  FFW_CHECK_MSG(!keys.empty(), "wait_any needs at least one (src, tag) key");
  if (!owner_->transport_->direct_delivery()) return wait_any_polled(keys);
  VCluster::Mailbox& box = *owner_->boxes_[static_cast<std::size_t>(rank_)];
  owner_->publish_blocked(rank_, VCluster::BlockedState::Kind::kWaitAny,
                          {keys.begin(), keys.end()});
  std::unique_lock lk(box.mu);
  // Rotate the scan start per call: a fixed start at index 0 services
  // the lowest-index peer first whenever several keys are ready, so
  // under sustained arrivals the high-index peers starve and the
  // overlap schedule degenerates back into a fixed drain order.
  const std::size_t start = wait_any_start_++ % keys.size();
  std::size_t hit = keys.size();
  const auto pred = [&] {
    if (owner_->aborted()) return true;
    for (std::size_t k = 0; k < keys.size(); ++k) {
      const std::size_t i = (start + k) % keys.size();
      const auto it = box.q.find(keys[i]);
      if (it != box.q.end() && !it->second.ready.empty()) {
        hit = i;
        return true;
      }
    }
    return false;
  };
  if (owner_->opts_.deadline_ms > 0) {
    const auto dl = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(owner_->opts_.deadline_ms);
    if (!box.cv.wait_until(lk, dl, pred)) {
      lk.unlock();
      owner_->deadline_abort(rank_, "wait_any");
    }
  } else {
    box.cv.wait(lk, pred);
  }
  owner_->clear_blocked(rank_);
  if (owner_->aborted()) {
    lk.unlock();
    owner_->throw_cluster_aborted(rank_);
  }
  return hit;
}

std::size_t Comm::wait_any_polled(std::span<const std::pair<int, int>> keys) {
  VCluster::Mailbox& box = *owner_->boxes_[static_cast<std::size_t>(rank_)];
  owner_->publish_blocked(rank_, VCluster::BlockedState::Kind::kWaitAny,
                          {keys.begin(), keys.end()});
  const bool armed = owner_->opts_.deadline_ms > 0;
  const auto dl = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(owner_->opts_.deadline_ms);
  const std::size_t start = wait_any_start_++ % keys.size();
  const auto scan = [&]() -> std::size_t {
    std::lock_guard lk(box.mu);
    for (std::size_t k = 0; k < keys.size(); ++k) {
      const std::size_t i = (start + k) % keys.size();
      const auto it = box.q.find(keys[i]);
      if (it != box.q.end() && !it->second.ready.empty()) return i;
    }
    return keys.size();
  };
  for (;;) {
    owner_->pump(rank_);
    const std::size_t hit = scan();
    if (hit < keys.size()) {
      owner_->clear_blocked(rank_);
      return hit;
    }
    if (owner_->aborted()) {
      owner_->clear_blocked(rank_);
      owner_->throw_cluster_aborted(rank_);
    }
    // Fail fast only when *every* watched edge is dead — while any
    // source lives, one of its frames can still satisfy the wait.
    bool all_dead = true;
    for (const auto& [src, tag] : keys) {
      if (!owner_->transport_->peer_dead(src)) {
        all_dead = false;
        break;
      }
    }
    if (all_dead) {
      owner_->pump(rank_);
      if (const std::size_t late = scan(); late < keys.size()) {
        owner_->clear_blocked(rank_);
        return late;
      }
      owner_->clear_blocked(rank_);
      throw RankFailure(keys.front().first,
                        "every rank rank " + std::to_string(rank_) +
                            " waited on in wait_any is dead "
                            "(connections lost)");
    }
    if (armed && std::chrono::steady_clock::now() >= dl)
      owner_->deadline_abort(rank_, "wait_any");
    owner_->transport_->wait_frames(rank_, kPollSliceUs);
  }
}

void Comm::barrier() {
  if (!owner_->hosts_all()) {
    barrier_messages();
    return;
  }
  owner_->publish_blocked(rank_, VCluster::BlockedState::Kind::kBarrier, {});
  std::unique_lock lk(owner_->bar_mu_);
  const std::uint64_t gen = owner_->bar_gen_;
  if (++owner_->bar_count_ == owner_->size()) {
    owner_->bar_count_ = 0;
    ++owner_->bar_gen_;
    owner_->bar_cv_.notify_all();
  } else {
    const auto pred = [&] {
      return owner_->bar_gen_ != gen || owner_->aborted();
    };
    if (owner_->opts_.deadline_ms > 0) {
      const auto dl = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(owner_->opts_.deadline_ms);
      if (!owner_->bar_cv_.wait_until(lk, dl, pred)) {
        lk.unlock();
        owner_->deadline_abort(rank_, "barrier");
      }
    } else {
      owner_->bar_cv_.wait(lk, pred);
    }
  }
  owner_->clear_blocked(rank_);
  if (owner_->aborted()) {
    if (lk.owns_lock()) lk.unlock();
    owner_->throw_cluster_aborted(rank_);
  }
}

void Comm::barrier_messages() {
  // Dissemination barrier (Hensgen–Finkel–Manber): round k sends a
  // token 2^k ranks ahead and receives one from 2^k behind; after
  // ceil(log2 p) rounds every rank has transitively heard from every
  // other. Runs entirely over tagged point-to-point messages, so it
  // needs no shared barrier state across processes, inherits the polled
  // recv's deadline/dead-peer handling, and its traffic shows up in the
  // ledger like a real MPI barrier's would. Reusing the same tags
  // across consecutive barriers is safe: each barrier consumes exactly
  // one token per (src, tag) edge, and edges commit FIFO.
  constexpr int kTagBarrier = -5000;  // reserved; round k uses -5000 - k
  const int p = size();
  if (p == 1) return;
  const unsigned char token = 1;
  int round = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    send_bytes((rank_ + dist) % p, kTagBarrier - round, &token, 1);
    (void)recv_bytes((rank_ + p - dist) % p, kTagBarrier - round);
  }
}

namespace {
constexpr int kTagCollective = -1000;  // reserved tag space for collectives

/// Largest power of two <= n.
int pow2_floor(int n) { return 1 << (std::bit_width(static_cast<unsigned>(n)) - 1); }
}  // namespace

// Recursive-doubling allreduce; ranks beyond the power-of-two prefix fold
// into the prefix first (standard MPI algorithm), so traffic counters
// match a real implementation's volume.
template <typename T>
static void allreduce_sum_impl(Comm& c, std::span<T> inout) {
  const int p = c.size();
  if (p == 1) return;
  const int rank = c.rank();
  const int p2 = pow2_floor(p);
  const int rem = p - p2;

  if (rank >= p2) {  // fold extra ranks into [0, rem)
    c.send(rank - p2, kTagCollective, std::span<const T>(inout));
    c.recv_into(rank - p2, kTagCollective - 1, inout);
    return;
  }
  if (rank < rem) {
    const std::vector<T> other = c.recv<T>(rank + p2, kTagCollective);
    for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += other[i];
  }
  for (int mask = 1; mask < p2; mask <<= 1) {
    const int peer = rank ^ mask;
    c.send(peer, kTagCollective - 2 - std::countr_zero(static_cast<unsigned>(mask)),
           std::span<const T>(inout));
    const std::vector<T> other = c.recv<T>(
        peer, kTagCollective - 2 - std::countr_zero(static_cast<unsigned>(mask)));
    for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += other[i];
  }
  if (rank < rem) {
    c.send(rank + p2, kTagCollective - 1, std::span<const T>(inout));
  }
}

void Comm::allreduce_sum(cspan inout) { allreduce_sum_impl(*this, inout); }
void Comm::allreduce_sum(rspan inout) { allreduce_sum_impl(*this, inout); }

double Comm::allreduce_sum(double v) {
  double buf[1] = {v};
  allreduce_sum(rspan{buf, 1});
  return buf[0];
}

double Comm::allreduce_max(double v) {
  // Binomial-tree reduce to rank 0 followed by a binomial broadcast:
  // 2(p-1) messages of 8 bytes total, and rank 0's incident degree is
  // ceil(log2 p) per phase instead of the p-1 of a star gather — the
  // same "traffic counters match a real MPI job" contract every other
  // collective honors.
  const int p = size();
  if (p == 1) return v;
  double best = v;
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((rank_ & mask) != 0) {
      // Lowest set bit reached: ship the partial max up the tree once.
      const double out[1] = {best};
      send(rank_ ^ mask, kTagCollective - 50, std::span<const double>(out, 1));
      break;
    }
    const int peer = rank_ | mask;
    if (peer < p)
      best = std::max(best, recv<double>(peer, kTagCollective - 50)[0]);
  }
  for (int mask = 1; mask < p; mask <<= 1) {
    if (rank_ < mask) {
      const int child = rank_ + mask;
      if (child < p) {
        const double out[1] = {best};
        send(child, kTagCollective - 51, std::span<const double>(out, 1));
      }
    } else if (rank_ < 2 * mask) {
      best = recv<double>(rank_ - mask, kTagCollective - 51)[0];
    }
  }
  return best;
}

template <typename T>
static void group_allreduce_impl(Comm& c, std::span<T> inout,
                                 std::span<const int> group) {
  if (group.size() <= 1) return;
  constexpr int kTagGroup = -2000;
  const int me = c.rank();
  const int leader = group[0];
  FFW_DCHECK(std::is_sorted(group.begin(), group.end()));
  if (me == leader) {
    for (std::size_t i = 1; i < group.size(); ++i) {
      const std::vector<T> part = c.recv<T>(group[i], kTagGroup);
      FFW_CHECK(part.size() == inout.size());
      for (std::size_t k = 0; k < inout.size(); ++k) inout[k] += part[k];
    }
    for (std::size_t i = 1; i < group.size(); ++i) {
      c.send(group[i], kTagGroup - 1, std::span<const T>(inout));
    }
  } else {
    c.send(leader, kTagGroup, std::span<const T>(inout));
    c.recv_into(leader, kTagGroup - 1, inout);
  }
}

void Comm::group_allreduce_sum(cspan inout, std::span<const int> group) {
  group_allreduce_impl(*this, inout, group);
}

void Comm::group_allreduce_sum(rspan inout, std::span<const int> group) {
  group_allreduce_impl(*this, inout, group);
}

double Comm::group_allreduce_sum(double v, std::span<const int> group) {
  double buf[1] = {v};
  group_allreduce_sum(rspan{buf, 1}, group);
  return buf[0];
}

template <typename T>
static void group_bcast_impl(Comm& c, std::span<T> data,
                             std::span<const int> group) {
  const int p = static_cast<int>(group.size());
  if (p <= 1) return;
  constexpr int kTagGroupBcast = -2100;
  FFW_DCHECK(std::is_sorted(group.begin(), group.end()));
  const auto it = std::lower_bound(group.begin(), group.end(), c.rank());
  FFW_CHECK_MSG(it != group.end() && *it == c.rank(),
                "group_bcast: calling rank not in group");
  // Binomial tree over group *positions*, rooted at position 0.
  const int vrank = static_cast<int>(it - group.begin());
  int mask = 1;
  while (mask < p) {
    if (vrank < mask) {
      const int child = vrank + mask;
      if (child < p) {
        c.send(group[static_cast<std::size_t>(child)], kTagGroupBcast,
               std::span<const T>(data));
      }
    } else if (vrank < 2 * mask) {
      c.recv_into(group[static_cast<std::size_t>(vrank - mask)],
                  kTagGroupBcast, data);
    }
    mask <<= 1;
  }
}

void Comm::group_bcast(cspan data, std::span<const int> group) {
  group_bcast_impl(*this, data, group);
}

void Comm::group_bcast(rspan data, std::span<const int> group) {
  group_bcast_impl(*this, data, group);
}

void Comm::bcast(cspan data, int root) {
  const int p = size();
  if (p == 1) return;
  // Binomial tree rooted at `root` using relative ranks.
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank < mask) {
      const int child = vrank + mask;
      if (child < p) {
        send((child + root) % p, kTagCollective - 100,
             std::span<const cplx>(data));
      }
    } else if (vrank < 2 * mask) {
      recv_into((vrank - mask + root) % p, kTagCollective - 100, data);
    }
    mask <<= 1;
  }
}

}  // namespace ffw
