#include "vcluster/comm.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "obs/obs.hpp"

namespace ffw {

std::uint64_t TrafficStats::total_bytes() const {
  std::uint64_t s = 0;
  for (auto b : bytes) s += b;
  return s;
}

std::uint64_t TrafficStats::total_messages() const {
  std::uint64_t s = 0;
  for (auto m : messages) s += m;
  return s;
}

std::uint64_t TrafficStats::max_rank_bytes() const {
  std::uint64_t best = 0;
  for (int r = 0; r < nranks; ++r) {
    std::uint64_t s = 0;
    for (int o = 0; o < nranks; ++o) {
      s += bytes[static_cast<std::size_t>(r) * nranks + o];
      s += bytes[static_cast<std::size_t>(o) * nranks + r];
    }
    best = std::max(best, s);
  }
  return best;
}

VCluster::VCluster(int nranks) : nranks_(nranks) {
  FFW_CHECK(nranks >= 1);
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) boxes_.push_back(std::make_unique<Mailbox>());
  bytes_.assign(static_cast<std::size_t>(nranks) * nranks, 0);
  messages_.assign(static_cast<std::size_t>(nranks) * nranks, 0);
}

void VCluster::run(const std::function<void(Comm&)>& rank_main) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &rank_main] {
      // Tag the rank thread for the obs subsystem so spans/counters
      // recorded inside rank_main attribute to this rank (no-op while
      // tracing is disabled).
      obs::set_rank(r);
      Comm comm(this, r);
      rank_main(comm);
    });
  }
  for (auto& t : threads) t.join();
  // Rank threads spawn delayed deliveries but have all joined, so the
  // set below is final; join it so no delivery outlives the run.
  std::vector<std::thread> pending;
  {
    std::lock_guard lk(delay_mu_);
    pending.swap(delay_threads_);
  }
  for (auto& t : pending) t.join();
}

void VCluster::set_send_delay(std::function<int(int, int, int)> delay_us) {
  delay_fn_ = std::move(delay_us);
}

TrafficStats VCluster::traffic() const {
  std::lock_guard lk(stats_mu_);
  return TrafficStats{nranks_, bytes_, messages_};
}

void VCluster::reset_traffic() {
  std::lock_guard lk(stats_mu_);
  std::fill(bytes_.begin(), bytes_.end(), 0);
  std::fill(messages_.begin(), messages_.end(), 0);
  by_tag_.clear();
}

TagTraffic VCluster::tag_traffic(int tag) const {
  std::lock_guard lk(stats_mu_);
  const auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? TagTraffic{} : it->second;
}

std::map<int, TagTraffic> VCluster::traffic_by_tag() const {
  std::lock_guard lk(stats_mu_);
  return by_tag_;
}

void VCluster::deposit(int src, int dst, int tag,
                       std::vector<unsigned char> bytes) {
  {
    // Traffic is accounted at send time — a delivery delay changes when a
    // message is *seen*, never what goes on the wire.
    std::lock_guard lk(stats_mu_);
    const std::size_t e = static_cast<std::size_t>(src) * nranks_ + dst;
    bytes_[e] += bytes.size();
    messages_[e] += 1;
    TagTraffic& tt = by_tag_[tag];
    tt.bytes += bytes.size();
    tt.messages += 1;
  }
  const int delay_us = delay_fn_ ? delay_fn_(src, dst, tag) : 0;
  if (delay_us <= 0) {
    deliver(src, dst, tag, std::move(bytes));
    return;
  }
  std::lock_guard lk(delay_mu_);
  delay_threads_.emplace_back(
      [this, src, dst, tag, delay_us, b = std::move(bytes)]() mutable {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        deliver(src, dst, tag, std::move(b));
      });
}

void VCluster::deliver(int src, int dst, int tag,
                       std::vector<unsigned char> bytes) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lk(box.mu);
    box.q[{src, tag}].push_back(std::move(bytes));
  }
  box.cv.notify_all();
}

int Comm::size() const { return owner_->size(); }

void Comm::send_bytes(int dst, int tag, const unsigned char* p,
                      std::size_t n) {
  FFW_CHECK(dst >= 0 && dst < size());
  FFW_CHECK_MSG(dst != rank_, "self-sends are not supported; keep local data local");
  // Bridge wire volume into the per-rank obs counters (the per-tag
  // TagTraffic ledger below stays the source of truth for tests).
  obs::add(obs::Counter::kWireBytes, n);
  owner_->deposit(rank_, dst, tag, std::vector<unsigned char>(p, p + n));
}

std::vector<unsigned char> Comm::recv_bytes(int src, int tag) {
  FFW_CHECK(src >= 0 && src < size());
  VCluster::Mailbox& box = *owner_->boxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock lk(box.mu);
  const auto key = std::make_pair(src, tag);
  box.cv.wait(lk, [&] {
    auto it = box.q.find(key);
    return it != box.q.end() && !it->second.empty();
  });
  auto it = box.q.find(key);
  std::vector<unsigned char> out = std::move(it->second.front());
  it->second.pop_front();
  return out;
}

bool Comm::probe(int src, int tag) {
  VCluster::Mailbox& box = *owner_->boxes_[static_cast<std::size_t>(rank_)];
  std::lock_guard lk(box.mu);
  auto it = box.q.find({src, tag});
  return it != box.q.end() && !it->second.empty();
}

std::size_t Comm::wait_any(std::span<const std::pair<int, int>> keys) {
  FFW_CHECK_MSG(!keys.empty(), "wait_any needs at least one (src, tag) key");
  VCluster::Mailbox& box = *owner_->boxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock lk(box.mu);
  // Rotate the scan start per call: a fixed start at index 0 services
  // the lowest-index peer first whenever several keys are ready, so
  // under sustained arrivals the high-index peers starve and the
  // overlap schedule degenerates back into a fixed drain order.
  const std::size_t start = wait_any_start_++ % keys.size();
  std::size_t hit = keys.size();
  box.cv.wait(lk, [&] {
    for (std::size_t k = 0; k < keys.size(); ++k) {
      const std::size_t i = (start + k) % keys.size();
      const auto it = box.q.find(keys[i]);
      if (it != box.q.end() && !it->second.empty()) {
        hit = i;
        return true;
      }
    }
    return false;
  });
  return hit;
}

void Comm::barrier() {
  std::unique_lock lk(owner_->bar_mu_);
  const std::uint64_t gen = owner_->bar_gen_;
  if (++owner_->bar_count_ == owner_->size()) {
    owner_->bar_count_ = 0;
    ++owner_->bar_gen_;
    owner_->bar_cv_.notify_all();
  } else {
    owner_->bar_cv_.wait(lk, [&] { return owner_->bar_gen_ != gen; });
  }
}

namespace {
constexpr int kTagCollective = -1000;  // reserved tag space for collectives

/// Largest power of two <= n.
int pow2_floor(int n) { return 1 << (std::bit_width(static_cast<unsigned>(n)) - 1); }
}  // namespace

// Recursive-doubling allreduce; ranks beyond the power-of-two prefix fold
// into the prefix first (standard MPI algorithm), so traffic counters
// match a real implementation's volume.
template <typename T>
static void allreduce_sum_impl(Comm& c, std::span<T> inout) {
  const int p = c.size();
  if (p == 1) return;
  const int rank = c.rank();
  const int p2 = pow2_floor(p);
  const int rem = p - p2;

  if (rank >= p2) {  // fold extra ranks into [0, rem)
    c.send(rank - p2, kTagCollective, std::span<const T>(inout));
    c.recv_into(rank - p2, kTagCollective - 1, inout);
    return;
  }
  if (rank < rem) {
    const std::vector<T> other = c.recv<T>(rank + p2, kTagCollective);
    for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += other[i];
  }
  for (int mask = 1; mask < p2; mask <<= 1) {
    const int peer = rank ^ mask;
    c.send(peer, kTagCollective - 2 - std::countr_zero(static_cast<unsigned>(mask)),
           std::span<const T>(inout));
    const std::vector<T> other = c.recv<T>(
        peer, kTagCollective - 2 - std::countr_zero(static_cast<unsigned>(mask)));
    for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += other[i];
  }
  if (rank < rem) {
    c.send(rank + p2, kTagCollective - 1, std::span<const T>(inout));
  }
}

void Comm::allreduce_sum(cspan inout) { allreduce_sum_impl(*this, inout); }
void Comm::allreduce_sum(rspan inout) { allreduce_sum_impl(*this, inout); }

double Comm::allreduce_sum(double v) {
  double buf[1] = {v};
  allreduce_sum(rspan{buf, 1});
  return buf[0];
}

double Comm::allreduce_max(double v) {
  // max = allreduce over the semigroup; reuse the doubling pattern with a
  // local max fold via sum-of-deltas is wrong, so do gather-to-0 + bcast.
  const int p = size();
  if (p == 1) return v;
  if (rank_ == 0) {
    double best = v;
    for (int r = 1; r < p; ++r) {
      const std::vector<double> x = recv<double>(r, kTagCollective - 50);
      best = std::max(best, x[0]);
    }
    for (int r = 1; r < p; ++r) {
      const double out[1] = {best};
      send(r, kTagCollective - 51, std::span<const double>(out, 1));
    }
    return best;
  }
  const double out[1] = {v};
  send(0, kTagCollective - 50, std::span<const double>(out, 1));
  return recv<double>(0, kTagCollective - 51)[0];
}

template <typename T>
static void group_allreduce_impl(Comm& c, std::span<T> inout,
                                 std::span<const int> group) {
  if (group.size() <= 1) return;
  constexpr int kTagGroup = -2000;
  const int me = c.rank();
  const int leader = group[0];
  FFW_DCHECK(std::is_sorted(group.begin(), group.end()));
  if (me == leader) {
    for (std::size_t i = 1; i < group.size(); ++i) {
      const std::vector<T> part = c.recv<T>(group[i], kTagGroup);
      FFW_CHECK(part.size() == inout.size());
      for (std::size_t k = 0; k < inout.size(); ++k) inout[k] += part[k];
    }
    for (std::size_t i = 1; i < group.size(); ++i) {
      c.send(group[i], kTagGroup - 1, std::span<const T>(inout));
    }
  } else {
    c.send(leader, kTagGroup, std::span<const T>(inout));
    c.recv_into(leader, kTagGroup - 1, inout);
  }
}

void Comm::group_allreduce_sum(cspan inout, std::span<const int> group) {
  group_allreduce_impl(*this, inout, group);
}

void Comm::group_allreduce_sum(rspan inout, std::span<const int> group) {
  group_allreduce_impl(*this, inout, group);
}

double Comm::group_allreduce_sum(double v, std::span<const int> group) {
  double buf[1] = {v};
  group_allreduce_sum(rspan{buf, 1}, group);
  return buf[0];
}

void Comm::bcast(cspan data, int root) {
  const int p = size();
  if (p == 1) return;
  // Binomial tree rooted at `root` using relative ranks.
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank < mask) {
      const int child = vrank + mask;
      if (child < p) {
        send((child + root) % p, kTagCollective - 100,
             std::span<const cplx>(data));
      }
    } else if (vrank < 2 * mask) {
      recv_into((vrank - mask + root) % p, kTagCollective - 100, data);
    }
    mask <<= 1;
  }
}

}  // namespace ffw
