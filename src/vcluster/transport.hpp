// Pluggable byte-moving backends under the Comm layer (DESIGN.md
// Sec. 16).
//
// Everything that makes the comm layer trustworthy is *above* this
// interface and therefore shared by every backend: per-edge sequence
// stamping and the CRC-32 payload checksum (framing), the receiver-side
// reorder buffer that commits frames in send order, FaultPlan
// injection, deadline arming with wait-for diagnostics, and the
// payload/frame-overhead traffic ledgers. A Transport only moves
// already-framed bytes between ranks:
//
//  * InProcTransport — the original threads-as-ranks mailbox: send()
//    deposits synchronously into the destination rank's mailbox
//    (direct_delivery() == true), receivers park on the mailbox condvar.
//    Bit-identical behavior and byte-identical ledgers to the
//    pre-transport VCluster; the default.
//  * ShmRingTransport (vcluster/shm_ring.hpp) — one SPSC byte ring per
//    directed (src, dst) edge in a shared segment (heap when all ranks
//    are threads of one process, shm_open/mmap when ranks are real
//    processes), futex doorbells for parking, bounded-backoff
//    backpressure when a ring fills.
//  * TcpTransport (vcluster/transport_tcp.hpp) — a full socket mesh
//    (length-prefixed frames over the logical 12 B header), nonblocking
//    sends with per-edge pending buffers for backpressure, and a
//    connect/accept rendezvous from a host file for multi-machine runs.
//
// Wire record format, identical on the ring byte stream and the TCP
// stream (FrameParser below decodes both):
//
//     u32 length   — bytes that follow (4 + 12 + payload)
//     i32 tag
//     u64 seq      }  the logical 12-byte frame header the ledger
//     u32 crc      }  accounts as frame_overhead_bytes()
//     payload
//
// The 8-byte (length, tag) envelope is transport bookkeeping — it is
// counted in TransportCounters::wire_bytes (that is what really goes on
// the wire) but never in the per-tag payload ledger, which must stay
// byte-identical across backends (asserted in tests/transport_test.cpp
// at p = 3/5/6/12).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ffw {

/// One framed message as a transport sees it: the logical frame header
/// plus the payload. `src` is implied by the edge on send and reported
/// by drain() on receive.
struct WireFrame {
  int tag = 0;
  std::uint64_t seq = 0;
  std::uint32_t crc = 0;
  std::vector<unsigned char> payload;
};

/// Fixed wire-record envelope: u32 length + i32 tag precede the
/// 12-byte logical header. Kept out of the payload ledger.
inline constexpr std::size_t kWireEnvelopeBytes = 8;
/// Logical frame header (seq + crc) — must match VCluster::kFrameBytes.
inline constexpr std::size_t kWireHeaderBytes = 12;

/// Serialised size of one wire record.
inline std::size_t wire_record_bytes(std::size_t payload) {
  return kWireEnvelopeBytes + kWireHeaderBytes + payload;
}

/// Appends the full wire record for `f` to `out`.
void wire_encode(const WireFrame& f, std::vector<unsigned char>& out);

/// Incremental decoder for the wire-record stream (TCP bytes or ring
/// bytes arrive in arbitrary chunks). Feed bytes; complete frames are
/// handed to the sink in arrival order.
class FrameParser {
 public:
  /// Consume `n` bytes; calls `sink` once per completed frame.
  void feed(const unsigned char* p, std::size_t n,
            const std::function<void(WireFrame)>& sink);
  /// Bytes buffered waiting for the rest of a record.
  std::size_t pending_bytes() const { return buf_.size(); }

 private:
  std::vector<unsigned char> buf_;
};

/// Cumulative per-transport cost counters ("what did moving these bytes
/// actually take"), aggregated over all local ranks. The in-process
/// backend reports zeros — that contrast (bytes on a real wire vs bytes
/// through a mailbox) is the point.
struct TransportCounters {
  std::uint64_t syscalls = 0;          ///< futex/socket syscalls issued
  std::uint64_t ring_full_stalls = 0;  ///< sender backoffs on a full ring
  std::uint64_t wire_bytes = 0;        ///< physical bytes incl. envelope
};

/// Outcome of a (possibly blocking) transport send.
enum class SendStatus {
  kOk,
  kTimeout,   ///< backpressure did not clear within the deadline
  kPeerDead,  ///< destination rank is known dead (connection lost)
};

/// A byte-moving backend for one cluster. One Transport instance serves
/// every rank hosted by this process (all of them in threads mode, one
/// in process mode); rank-indexed calls say which local rank acts.
///
/// Threading contract: send(src, ...) may be called from rank src's
/// thread and from delayed-delivery threads concurrently (backends
/// serialise per edge); drain/wait_frames(dst) are only called from
/// rank dst's thread; wake_all/counters may be called from anywhere.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* name() const = 0;
  virtual int size() const = 0;

  /// True when send() delivers synchronously into the destination
  /// mailbox (in-process backend): receivers then park on the mailbox
  /// condvar and never poll the transport.
  virtual bool direct_delivery() const { return false; }

  /// Installs the synchronous delivery sink (direct-delivery backends
  /// only): sink(src, dst, frame) commits into dst's mailbox.
  virtual void set_deliver(
      std::function<void(int src, int dst, WireFrame)> /*sink*/) {}

  /// Rank `src` puts one frame on the wire toward `dst`. May block on
  /// backpressure up to `deadline_ms` (0 = block indefinitely). Takes
  /// the frame by value so the in-process path moves the payload
  /// end-to-end without copying.
  virtual SendStatus send(int src, int dst, WireFrame frame,
                          int deadline_ms) = 0;

  /// Rank `dst` pulls every frame that has arrived (non-blocking);
  /// `sink(src, frame)` is invoked per frame in arrival order. Returns
  /// the number of frames drained. Also makes progress on any pending
  /// (backpressured) outbound bytes of dst.
  virtual std::size_t drain(
      int dst, const std::function<void(int src, WireFrame)>& sink) {
    (void)dst, (void)sink;
    return 0;
  }

  /// Rank `dst` parks until new frames may be available, wake_all() is
  /// called, or `timeout_us` elapses. Spurious returns are fine.
  virtual void wait_frames(int dst, int timeout_us) {
    (void)dst, (void)timeout_us;
  }

  /// Wakes every rank parked in wait_frames (poison/shutdown).
  virtual void wake_all() {}

  /// Drops every undelivered byte (rings, stream-parser staging,
  /// pending outbound buffers) so a recover()ed cluster starts from a
  /// clean sequence space. Only called while no rank is running.
  virtual void reset() {}

  /// True when `rank` is known to be dead (its connection dropped). A
  /// recv with no queued frames from a dead peer fails fast instead of
  /// waiting for the deadline.
  virtual bool peer_dead(int /*rank*/) const { return false; }

  virtual TransportCounters counters() const { return {}; }
};

/// The original threads-as-ranks backend: synchronous mailbox deposit.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(int nranks) : nranks_(nranks) {}
  const char* name() const override { return "inproc"; }
  int size() const override { return nranks_; }
  bool direct_delivery() const override { return true; }
  void set_deliver(
      std::function<void(int, int, WireFrame)> sink) override {
    deliver_ = std::move(sink);
  }
  SendStatus send(int src, int dst, WireFrame frame,
                  int /*deadline_ms*/) override {
    deliver_(src, dst, std::move(frame));
    return SendStatus::kOk;
  }

 private:
  int nranks_;
  std::function<void(int, int, WireFrame)> deliver_;
};

/// Builds a threads-mode transport by name: "inproc", "shm" (heap-backed
/// rings), or "tcp" (loopback socket mesh with internal rendezvous).
/// Aborts on an unknown name.
std::shared_ptr<Transport> make_transport(const std::string& name,
                                          int nranks);

/// The threads-mode default: $FFW_TRANSPORT if set (same names as
/// make_transport), else "inproc". Lets `ctest` re-run whole test
/// binaries over another backend (e.g. fault_test_shm) without code
/// changes.
std::string default_transport_name();

}  // namespace ffw
