// Shared-memory ring transport: one SPSC byte ring per directed
// (src, dst) edge plus one futex doorbell per destination rank, laid
// out in a single contiguous segment (DESIGN.md Sec. 16).
//
// The segment lives either on the heap (threads-as-ranks mode — the
// fault-injection matrix runs the whole `fault` label over it to prove
// the comm layer transport-independent) or in a POSIX shm_open/mmap
// segment (real-process mode, one rank per process; the name travels in
// $FFW_SHM_NAME from ffw_launch). The ring code is identical in both
// modes: std::atomic<u64> head/tail cursors with acquire/release
// ordering (address-free on this platform, so they work across
// processes) and FUTEX_WAIT/FUTEX_WAKE on the doorbells for parking.
//
// Rings carry the wire-record byte stream of transport.hpp — records
// are *streamed*, not slotted, so a frame larger than the ring passes
// through in pieces while the consumer drains (the FrameParser
// reassembles); a full ring costs the producer bounded-backoff stalls
// (counted in TransportCounters::ring_full_stalls), never a lost or
// torn frame.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "vcluster/transport.hpp"

namespace ffw {

class ShmRingTransport final : public Transport {
 public:
  /// Threads mode: heap-backed segment, every rank local.
  ShmRingTransport(int nranks, std::size_t ring_bytes);

  /// Process mode: attach the named POSIX shm segment (creating and
  /// initialising it when it does not exist yet — creation races
  /// between workers resolve via O_EXCL; whoever loses attaches and
  /// waits for the winner's init). `local_rank` is the one rank this
  /// process hosts.
  ShmRingTransport(int nranks, std::size_t ring_bytes,
                   const std::string& shm_name, int local_rank);

  ~ShmRingTransport() override;

  const char* name() const override { return "shm-ring"; }
  int size() const override { return nranks_; }

  SendStatus send(int src, int dst, WireFrame frame,
                  int deadline_ms) override;
  std::size_t drain(
      int dst, const std::function<void(int src, WireFrame)>& sink) override;
  void wait_frames(int dst, int timeout_us) override;
  void wake_all() override;
  void reset() override;
  TransportCounters counters() const override;

  /// Segment byte size for a given geometry (creation-side sizing).
  static std::size_t segment_bytes(int nranks, std::size_t ring_bytes);

 private:
  struct Ring;           // head/tail cursors + data (in the segment)
  Ring& ring(int src, int dst) const;
  std::atomic<std::uint32_t>& bell(int dst) const;

  void init_segment();
  void attach_shm(const std::string& name);

  int nranks_;
  std::size_t ring_bytes_;
  unsigned char* base_ = nullptr;   // segment base (heap or mmap)
  std::size_t seg_bytes_ = 0;
  bool heap_mode_ = false;
  int shm_fd_ = -1;
  int local_rank_ = -1;             // process mode; -1 = all ranks local

  // Process-local state (never shared): per-edge producer serialisation
  // (rank thread + delayed-delivery threads may send on one edge
  // concurrently) and per-edge stream reassembly on the consumer side.
  std::vector<std::unique_ptr<std::mutex>> edge_send_mu_;
  std::vector<FrameParser> edge_parser_;

  mutable std::atomic<std::uint64_t> syscalls_{0};
  mutable std::atomic<std::uint64_t> stalls_{0};
  mutable std::atomic<std::uint64_t> wire_bytes_{0};
};

}  // namespace ffw
