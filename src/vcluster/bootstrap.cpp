#include "vcluster/bootstrap.hpp"

#include <errno.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/check.hpp"
#include "vcluster/shm_ring.hpp"
#include "vcluster/transport_tcp.hpp"

namespace ffw {

namespace {

const char* env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? v : fallback;
}

}  // namespace

std::optional<ProcessBootstrap> bootstrap_from_env() {
  const char* rank = std::getenv("FFW_RANK");
  if (rank == nullptr || *rank == '\0') return std::nullopt;
  ProcessBootstrap bs;
  bs.rank = std::atoi(rank);
  bs.world = std::atoi(env_or("FFW_WORLD", "1"));
  bs.transport = env_or("FFW_TRANSPORT", "shm");
  bs.shm_name = env_or("FFW_SHM_NAME", "");
  bs.ring_bytes = static_cast<std::size_t>(
      std::atoll(env_or("FFW_RING_BYTES", "0")));
  if (bs.ring_bytes == 0) bs.ring_bytes = kDefaultRingBytes;
  bs.hostfile = env_or("FFW_HOSTFILE", "");
  bs.attempt = std::atoi(env_or("FFW_LAUNCH_ATTEMPT", "0"));
  FFW_CHECK(bs.world >= 1 && bs.rank >= 0 && bs.rank < bs.world);
  return bs;
}

std::shared_ptr<Transport> make_worker_transport(const ProcessBootstrap& bs) {
  if (bs.transport == "shm") {
    FFW_CHECK_MSG(!bs.shm_name.empty(), "bootstrap: FFW_SHM_NAME missing");
    return std::make_shared<ShmRingTransport>(bs.world, bs.ring_bytes,
                                              bs.shm_name, bs.rank);
  }
  if (bs.transport == "tcp") {
    FFW_CHECK_MSG(!bs.hostfile.empty(), "bootstrap: FFW_HOSTFILE missing");
    return std::make_shared<TcpTransport>(
        bs.world, parse_hostfile(bs.hostfile, bs.world), bs.rank);
  }
  FFW_CHECK_MSG(false, "bootstrap: FFW_TRANSPORT must be shm or tcp");
  return nullptr;
}

std::unique_ptr<VCluster> make_worker_cluster(const ProcessBootstrap& bs) {
  return std::make_unique<VCluster>(bs.world, make_worker_transport(bs),
                                    bs.rank);
}

namespace {

/// Spawns one worker. Returns the child pid.
pid_t spawn_worker(const LaunchOptions& opts,
                   const std::vector<std::string>& command, int rank,
                   int attempt, const std::string& shm_name,
                   const std::string& hostfile) {
  const pid_t pid = ::fork();
  FFW_CHECK_MSG(pid >= 0, "launch: fork failed");
  if (pid > 0) return pid;
  // Child: install the bootstrap environment, then exec.
  ::setenv("FFW_RANK", std::to_string(rank).c_str(), 1);
  ::setenv("FFW_WORLD", std::to_string(opts.world).c_str(), 1);
  ::setenv("FFW_TRANSPORT", opts.transport.c_str(), 1);
  ::setenv("FFW_RING_BYTES", std::to_string(opts.ring_bytes).c_str(), 1);
  ::setenv("FFW_LAUNCH_ATTEMPT", std::to_string(attempt).c_str(), 1);
  if (!shm_name.empty()) ::setenv("FFW_SHM_NAME", shm_name.c_str(), 1);
  if (!hostfile.empty()) ::setenv("FFW_HOSTFILE", hostfile.c_str(), 1);
  for (const auto& [k, v] : opts.extra_env) ::setenv(k.c_str(), v.c_str(), 1);
  std::vector<char*> argv;
  argv.reserve(command.size() + 1);
  for (const auto& a : command) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execvp(argv[0], argv.data());
  std::perror("ffw_launch: execvp");
  ::_exit(127);
}

}  // namespace

int launch_processes(const LaunchOptions& opts,
                     const std::vector<std::string>& command) {
  FFW_CHECK(opts.world >= 1 && !command.empty());
  FFW_CHECK(opts.transport == "shm" || opts.transport == "tcp");

  std::string shm_name = opts.shm_name;
  if (opts.transport == "shm" && shm_name.empty())
    shm_name = "/ffw-" + std::to_string(::getpid());

  std::string hostfile = opts.hostfile;
  if (opts.transport == "tcp" && hostfile.empty()) {
    const int base = opts.base_port > 0
                         ? opts.base_port
                         : 20000 + static_cast<int>(::getpid() % 20000);
    hostfile = "/tmp/ffw-hosts-" + std::to_string(::getpid());
    std::ofstream out(hostfile);
    for (int r = 0; r < opts.world; ++r)
      out << "127.0.0.1:" << base + r << "\n";
    FFW_CHECK_MSG(out.good(), "launch: cannot write hostfile");
  }

  for (int attempt = 0; attempt <= opts.max_restarts; ++attempt) {
    // Each attempt starts from a pristine segment: stale ring bytes of
    // a killed world must not leak into the relaunched one.
    if (opts.transport == "shm") ::shm_unlink(shm_name.c_str());

    std::vector<pid_t> pids;
    pids.reserve(static_cast<std::size_t>(opts.world));
    for (int r = 0; r < opts.world; ++r)
      pids.push_back(
          spawn_worker(opts, command, r, attempt, shm_name, hostfile));

    bool failed = false;
    int alive = opts.world;
    while (alive > 0) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, 0);
      if (pid < 0 && errno == EINTR) continue;
      FFW_CHECK(pid > 0);
      if (std::find(pids.begin(), pids.end(), pid) == pids.end()) continue;
      --alive;
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        failed = true;
        const int rank =
            static_cast<int>(std::find(pids.begin(), pids.end(), pid) -
                             pids.begin());
        std::fprintf(stderr,
                     "[ffw_launch] rank %d (pid %d) died (%s %d); killing "
                     "world, attempt %d/%d\n",
                     rank, static_cast<int>(pid),
                     WIFSIGNALED(status) ? "signal" : "status",
                     WIFSIGNALED(status) ? WTERMSIG(status)
                                         : WEXITSTATUS(status),
                     attempt, opts.max_restarts);
        // Tear down the survivors; they hold rings/sockets of a world
        // that no longer exists.
        for (const pid_t p : pids)
          if (p != pid) ::kill(p, SIGKILL);
        while (alive > 0) {
          if (::waitpid(-1, &status, 0) > 0) --alive;
        }
        break;
      }
    }
    if (!failed) {
      if (opts.transport == "shm") ::shm_unlink(shm_name.c_str());
      return 0;
    }
  }
  if (opts.transport == "shm") ::shm_unlink(shm_name.c_str());
  std::fprintf(stderr, "[ffw_launch] giving up after %d restarts\n",
               opts.max_restarts);
  return 1;
}

}  // namespace ffw
