// Shared operator-table cache: the multi-tenant half of the paper's
// amortisation story. A DBIM reconstruction spends a large, contrast-
// independent setup cost before its first iteration — MLFMA translation/
// interpolation/shift tables and near-field blocks (mlfma/tables.hpp),
// the CBS kernel spectrum and FFT plans (forward/cbs.hpp), and the
// transceiver operators with the per-transmitter incident panel. All of
// that state is a pure function of (grid, discretisation parameters,
// precision, transceiver geometry), so concurrent reconstructions of
// *different measurement data* over the same configuration can share
// one immutable artifact instead of rebuilding it per job.
//
// The cache is thread-safe with single-flight builds: when several jobs
// miss the same key at once, exactly one builds (outside the lock, so
// unrelated keys build concurrently) and the rest block on a
// shared_future of the same artifact — waiters count as hits, because
// they paid none of the build. Artifacts are handed out as
// shared_ptr<const T>, so LRU eviction under the byte budget can never
// free tables a live engine still references: eviction only drops the
// cache's own reference. Entries still being built and the
// most-recently-used entry are never evicted; a single artifact larger
// than the whole budget is admitted anyway (the budget is a target, not
// an admission gate).
//
// Observability: hits/misses/evictions and accumulated build time are
// published both through stats() and the global obs counters
// (table_cache_hits / table_cache_misses / table_cache_evictions /
// table_build_ns), so service traces show amortisation directly.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "forward/cbs.hpp"
#include "greens/transceivers.hpp"
#include "grid/grid.hpp"
#include "mlfma/plan.hpp"
#include "mlfma/tables.hpp"

namespace ffw {

/// Read-only transceiver artifact: the Transceivers operator (with its
/// materialised dense G_R when it fits the budget) plus the full
/// incident-field panel — column t of the n x T panel is
/// incident_field(t), precomputed once so every DBIM iteration of every
/// sharing job skips the T Hankel-evaluation passes.
struct TransceiverTables {
  TransceiverTables(const Grid& g, std::vector<Vec2> tx, std::vector<Vec2> rx);
  TransceiverTables(const TransceiverTables&) = delete;
  TransceiverTables& operator=(const TransceiverTables&) = delete;

  Grid grid;
  Transceivers trx;
  cvec incident_panel;  // n * T, column t at offset t * n
  double build_seconds = 0.0;

  ccspan incident() const { return incident_panel; }
  std::size_t bytes() const;
};

/// Cache key: every field that the cached artifacts are a function of.
/// Geometry-dependent artifacts (transceivers) fold their positions into
/// geometry_hash; grid spacing enters as the exact bit pattern of h.
struct TableKey {
  enum class Kind : std::uint8_t { kMlfma, kCbs, kTransceivers };
  Kind kind = Kind::kMlfma;
  int nx = 0;
  double pixel_h = 0.0;
  int leaf_pixel_side = 0;
  double digits = 0.0;
  double oversample = 0.0;
  int interp_width = 0;
  Precision precision = Precision::kDouble;
  std::uint64_t geometry_hash = 0;

  bool operator==(const TableKey&) const = default;
};

struct TableKeyHash {
  std::size_t operator()(const TableKey& k) const;
};

class OperatorTableCache {
 public:
  struct Stats {
    std::size_t hits = 0;        // includes waiters on in-flight builds
    std::size_t misses = 0;      // artifacts actually built
    std::size_t evictions = 0;
    std::size_t entries = 0;     // resident (incl. in-flight) entries
    std::size_t bytes = 0;       // resident ready bytes
    std::size_t budget = 0;
    double build_seconds = 0.0;  // accumulated artifact build time
  };

  explicit OperatorTableCache(std::size_t budget_bytes = std::size_t{1} << 30);

  /// MLFMA tables for (grid, leaf, params) — plan, translation/interp/
  /// shift operators and near-field blocks, with an owned QuadTree.
  std::shared_ptr<const OperatorTables> mlfma_tables(
      const Grid& grid, int leaf_pixel_side, const MlfmaParams& params = {});

  /// CBS kernel spectrum + FFT plans for (grid, precision).
  std::shared_ptr<const CbsTables> cbs_tables(
      const Grid& grid, Precision precision = Precision::kDouble);

  /// Transceiver operators + incident panel for (grid, tx, rx).
  std::shared_ptr<const TransceiverTables> transceiver_tables(
      const Grid& grid, const std::vector<Vec2>& tx,
      const std::vector<Vec2>& rx);

  /// Shrinks the byte budget (evicting immediately) or grows it.
  void set_budget(std::size_t budget_bytes);
  /// Drops every cache reference (live shared_ptr hand-outs survive).
  void clear();

  Stats stats() const;

 private:
  struct Built {
    std::shared_ptr<const void> ptr;
    std::size_t bytes = 0;
    double build_seconds = 0.0;
  };
  struct Entry {
    std::shared_future<std::shared_ptr<const void>> future;
    std::size_t bytes = 0;
    bool ready = false;
    std::list<TableKey>::iterator lru_it;
  };

  std::shared_ptr<const void> acquire(const TableKey& key,
                                      const std::function<Built()>& build);
  void evict_locked();

  mutable std::mutex mu_;
  std::unordered_map<TableKey, Entry, TableKeyHash> entries_;
  std::list<TableKey> lru_;  // front = most recently used
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  double build_seconds_ = 0.0;
};

/// FNV-1a over the raw positions — the geometry_hash of transceiver keys.
std::uint64_t hash_positions(const std::vector<Vec2>& tx,
                             const std::vector<Vec2>& rx);

}  // namespace ffw
