#include "service/service.hpp"

#include <limits>
#include <utility>

#include "common/timer.hpp"
#include "dbim/continuation.hpp"
#include "obs/obs.hpp"

namespace ffw {

ReconstructionService::ReconstructionService(OperatorTableCache& cache,
                                             const ServiceOptions& opts)
    : cache_(cache), opts_(opts) {
  FFW_CHECK(opts_.max_active_jobs >= 1);
}

int ReconstructionService::submit(JobSpec spec) {
  for (std::size_t b = 0; b < spec.bands.size(); ++b) {
    FFW_CHECK_MSG(spec.bands[b].nx > 0, "ladder job: band nx must be set");
    if (b > 0) {
      FFW_CHECK_MSG(spec.bands[b].nx >= spec.bands[b - 1].nx,
                    "ladder job: bands must run coarse to fine");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  const int id = static_cast<int>(jobs_.size());
  auto job = std::make_unique<Job>();
  job->id = id;
  job->spec = std::move(spec);
  job->last_residual = std::numeric_limits<double>::quiet_NaN();
  jobs_.push_back(std::move(job));
  queue_.push_back(id);
  cv_.notify_all();
  return id;
}

bool ReconstructionService::cancel(int job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (job_id < 0 || job_id >= static_cast<int>(jobs_.size())) return false;
  Job& job = *jobs_[static_cast<std::size_t>(job_id)];
  switch (job.state) {
    case JobState::kQueued:
      job.state = JobState::kCancelled;
      std::erase(queue_, job_id);
      cv_.notify_all();
      return true;
    case JobState::kRunning:
      job.cancel_requested = true;
      cv_.notify_all();
      return true;
    default:
      return false;  // already terminal
  }
}

JobStatus ReconstructionService::status(int job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  FFW_CHECK(job_id >= 0 && job_id < static_cast<int>(jobs_.size()));
  const Job& job = *jobs_[static_cast<std::size_t>(job_id)];
  JobStatus s;
  s.state = job.state;
  s.iterations = job.iterations;
  s.steps = job.steps;
  s.compute_seconds = job.compute_seconds;
  s.last_residual = job.last_residual;
  s.error = job.error;
  s.band = job.band;
  return s;
}

const DbimResult& ReconstructionService::result(int job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  FFW_CHECK(job_id >= 0 && job_id < static_cast<int>(jobs_.size()));
  const Job& job = *jobs_[static_cast<std::size_t>(job_id)];
  FFW_CHECK_MSG(job.result.has_value(),
                "job has no result (not completed, or cancelled before its "
                "first step)");
  return *job.result;
}

ServiceStats ReconstructionService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.submitted = jobs_.size();
  for (const auto& j : jobs_) {
    switch (j->state) {
      case JobState::kCompleted: ++s.completed; break;
      case JobState::kCancelled: ++s.cancelled; break;
      case JobState::kFailed: ++s.failed; break;
      default: break;
    }
    s.steps += j->steps;
    s.compute_seconds += j->compute_seconds;
  }
  s.pool_restarts = pool_restarts_;
  return s;
}

void ReconstructionService::admit_locked() {
  int active = 0;
  for (const auto& j : jobs_) {
    if (j->state == JobState::kRunning) ++active;
  }
  while (active < opts_.max_active_jobs && !queue_.empty()) {
    // Highest priority first; queue_ is in submission order, so a
    // strict comparison keeps FIFO within a priority class.
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      if (jobs_[static_cast<std::size_t>(queue_[i])]->spec.priority >
          jobs_[static_cast<std::size_t>(queue_[best])]->spec.priority) {
        best = i;
      }
    }
    Job& job = *jobs_[static_cast<std::size_t>(queue_[best])];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    job.state = JobState::kRunning;
    ++active;
  }
}

ReconstructionService::Job* ReconstructionService::pick_least_time_locked() {
  // Fair share: step forward the admitted job which has consumed the
  // least compute time so far (ties resolve to the earliest id).
  Job* pick = nullptr;
  for (const auto& j : jobs_) {
    if (j->state != JobState::kRunning || j->busy) continue;
    if (pick == nullptr || j->compute_seconds < pick->compute_seconds) {
      pick = j.get();
    }
  }
  return pick;
}

bool ReconstructionService::all_terminal_locked() const {
  for (const auto& j : jobs_) {
    if (j->state == JobState::kQueued || j->state == JobState::kRunning) {
      return false;
    }
  }
  return true;
}

void ReconstructionService::build_runtime(Job& job) {
  FFW_TRACE_SPAN("service.build", static_cast<std::int64_t>(job.id));
  // Ladder jobs draw geometry + data from the active band; the runtime
  // is rebuilt per band through the same cache, so rungs shared across
  // tenants are paid once.
  const JobBand* band =
      job.spec.bands.empty()
          ? nullptr
          : &job.spec.bands[static_cast<std::size_t>(job.band)];
  const Grid grid(band != nullptr ? band->nx : job.spec.nx);
  job.tables =
      cache_.mlfma_tables(grid, job.spec.leaf_pixel_side, job.spec.mlfma);
  job.engine = std::make_unique<MlfmaEngine>(job.tables);
  job.trx_tables = cache_.transceiver_tables(
      grid, band != nullptr ? band->transmitters : job.spec.transmitters,
      band != nullptr ? band->receivers : job.spec.receivers);
  DbimOptions opts = job.spec.dbim;
  if (band != nullptr && band->max_iterations > 0)
    opts.max_iterations = band->max_iterations;
  opts.incident_panel = job.trx_tables->incident();
  opts.table_cache = &cache_;
  Job* jp = &job;
  // Observer wrappers record per-job progress under the service lock,
  // then invoke the tenant's callback *unlocked* (so a callback may call
  // cancel() without deadlocking). Observers never feed back into the
  // DBIM math, so the trajectory matches an unobserved run exactly.
  auto user_progress = job.spec.dbim.progress;
  opts.progress = [this, jp, user_progress](int iter, double relres) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      jp->last_residual = relres;
    }
    if (user_progress) user_progress(iter, relres);
  };
  auto user_checkpoint = job.spec.dbim.checkpoint;
  opts.checkpoint = [this, jp, user_checkpoint](const DbimCheckpoint& c) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      jp->last_checkpoint = c;
      jp->has_checkpoint = true;
    }
    if (user_checkpoint) user_checkpoint(c);
  };
  const CMatrix& measured =
      band != nullptr ? band->measured : job.spec.measured;
  const ccspan initial = band != nullptr && job.band > 0
                             ? ccspan{job.warm_start}
                             : ccspan{job.spec.initial_contrast};
  job.stepper = std::make_unique<DbimStepper>(*job.engine,
                                              job.trx_tables->trx, measured,
                                              opts, job.spec.forward, initial);
}

void ReconstructionService::release_runtime_locked(Job& job) {
  // Order matters: the stepper references the engine and transceivers.
  job.stepper.reset();
  job.engine.reset();
  job.tables.reset();      // cache may still hold the artifact
  job.trx_tables.reset();
}

void ReconstructionService::worker_loop(Comm& comm) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    admit_locked();
    if (all_terminal_locked()) {
      cv_.notify_all();
      return;
    }
    Job* job = pick_least_time_locked();
    if (job == nullptr) {
      // Everything runnable is busy on other workers (or waiting on an
      // admission slot another worker holds); park until state changes.
      cv_.wait(lock);
      continue;
    }
    job->busy = true;
    const long long tick = tick_++;
    const bool inject = opts_.inject_rank_failure_at_tick >= 0 &&
                        !injected_ && tick >= opts_.inject_rank_failure_at_tick;
    if (inject) injected_ = true;
    lock.unlock();

    Timer timer;
    bool more = true;
    bool failed = false;
    std::string error;
    try {
      if (inject) {
        throw RankFailure(comm.rank(),
                          "injected rank failure (service fault test)");
      }
      if (!job->stepper && !job->cancel_requested) build_runtime(*job);
      if (!job->cancel_requested) {
        FFW_TRACE_SPAN("service.step", static_cast<std::int64_t>(job->id));
        more = job->stepper->step();
      }
    } catch (const CommFailure&) {
      // Pool-level failure: fail this job and release its slot *before*
      // rethrowing, so the surviving workers can drain to completion
      // instead of waiting forever on a busy ghost.
      lock.lock();
      const double dt = timer.seconds();
      job->busy = false;
      job->compute_seconds += dt;
      ++job->steps;
      job->state = JobState::kFailed;
      job->error = "pool rank failure during step";
      release_runtime_locked(*job);
      cv_.notify_all();
      lock.unlock();
      throw;  // poisons the pool; run() recovers and re-enters
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
    const double dt = timer.seconds();

    lock.lock();
    job->busy = false;
    job->compute_seconds += dt;
    ++job->steps;
    if (failed) {
      // Job-level crash isolation: only this job fails; its runtime is
      // dropped and every other job proceeds untouched.
      job->state = JobState::kFailed;
      job->error = error;
      release_runtime_locked(*job);
    } else if (job->cancel_requested) {
      job->state = JobState::kCancelled;
      if (job->stepper) {
        job->iterations = job->iterations_base + job->stepper->iteration();
        job->result = job->stepper->result();  // partial image kept
      }
      release_runtime_locked(*job);
    } else {
      job->iterations = job->iterations_base + job->stepper->iteration();
      job->last_residual = job->stepper->last_residual();
      if (!more) {
        const int nbands = static_cast<int>(job->spec.bands.size());
        if (job->band + 1 < nbands) {
          // Ladder hand-off: warm-start the next band from this band's
          // image (same arithmetic as the standalone continuation
          // driver — verbatim for equal-nx rungs) and rebuild the
          // runtime lazily on the next tick. The job stays kRunning and
          // keeps its fair-share position.
          const DbimResult res = job->stepper->result();
          const int prev_nx =
              job->spec.bands[static_cast<std::size_t>(job->band)].nx;
          const int next_nx =
              job->spec.bands[static_cast<std::size_t>(job->band + 1)].nx;
          const Grid gp(prev_nx), gn(next_nx);
          job->warm_start = continuation_warm_start(
              res.contrast, prev_nx, next_nx, gp.k0() * gp.k0(),
              gn.k0() * gn.k0());
          job->iterations_base = job->iterations;
          job->has_checkpoint = false;
          ++job->band;
          release_runtime_locked(*job);
        } else {
          job->state = JobState::kCompleted;
          job->result = job->stepper->result();
          release_runtime_locked(*job);
        }
      }
    }
    cv_.notify_all();
  }
}

void ReconstructionService::run(VCluster& vc) {
  for (;;) {
    try {
      vc.run([this](Comm& comm) { worker_loop(comm); });
      return;
    } catch (const CommFailure&) {
      bool retry = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        retry = pool_restarts_ < opts_.max_pool_restarts;
        if (retry) ++pool_restarts_;
      }
      if (!retry) throw;
      vc.recover();  // clear the poison; remaining jobs drain on re-entry
    }
  }
}

}  // namespace ffw
