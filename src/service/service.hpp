// Multi-tenant reconstruction service: many DBIM jobs over one shared
// rank pool and one shared OperatorTableCache.
//
// The execution model follows the fair-share harness idiom: the pool's
// worker ranks repeatedly *step forward the admitted job that has
// consumed the least compute time so far* (one DbimStepper iteration
// per tick), so a cheap job finishes early instead of queuing behind an
// expensive one, and every tenant makes proportional progress. Jobs are
// admitted from the priority queue (higher priority first, FIFO within
// a priority) whenever fewer than ServiceOptions::max_active_jobs are
// running; each admitted job lazily builds its runtime — MLFMA engine,
// transceivers, incident panel — through the shared cache, which is
// where the multi-tenant speedup comes from (bench_service measures
// it).
//
// Crash isolation, two layers:
//  * Job-level: any std::exception escaping a job's step (including a
//    throwing user progress callback) marks that job kFailed and
//    releases its worker; no other job's trajectory changes (steppers
//    are fully job-private, shared artifacts are immutable).
//  * Pool-level: a CommFailure (e.g. an injected RankFailure) fails the
//    job being stepped, releases it so the drain cannot deadlock, and
//    propagates to VCluster::run, which poisons the pool; run() then
//    recover()s the cluster and re-enters the worker loop (up to
//    max_pool_restarts) to finish the remaining jobs. Because steppers
//    never touch the comm layer mid-step, surviving jobs compute
//    results bit-identical to a fault-free run (service_test asserts
//    this).
//
// Observability: every step runs under a "service.step" span tagged
// with the job id; cache amortisation shows up in the table_cache_*
// counters and ServiceStats.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dbim/dbim.hpp"
#include "service/table_cache.hpp"
#include "vcluster/comm.hpp"

namespace ffw {

/// One rung of a multi-frequency job: its own grid side, geometry and
/// measured panel (independent experiments per operating frequency).
/// nx must be non-decreasing across a spec's bands (coarse to fine,
/// power-of-two steps); a band's max_iterations overrides the job-level
/// DbimOptions budget when positive.
struct JobBand {
  int nx = 0;
  std::vector<Vec2> transmitters;
  std::vector<Vec2> receivers;
  CMatrix measured;  // R x T, column t = transmitter t
  int max_iterations = 0;
};

/// One tenant's reconstruction request. The measured panel and geometry
/// are owned by the spec (the service keeps them alive for the job's
/// lifetime); grid/leaf/mlfma describe the operator configuration the
/// cache keys on.
struct JobSpec {
  std::string name;
  int nx = 32;
  int leaf_pixel_side = 8;
  MlfmaParams mlfma;
  std::vector<Vec2> transmitters;
  std::vector<Vec2> receivers;
  CMatrix measured;  // R x T, column t = transmitter t
  DbimOptions dbim;
  BicgstabOptions forward;
  cvec initial_contrast;
  /// Admission priority: higher admits first; FIFO within a priority.
  int priority = 0;
  /// Non-empty: the job is a frequency-continuation ladder. Bands run
  /// coarse to fine inside the ordinary fair-share schedule (one
  /// stepper iteration per tick, so a ladder never monopolises the
  /// pool); each band warm-starts from the previous band's image (the
  /// same hand-off arithmetic as dbim/continuation.hpp), the base
  /// nx/transmitters/receivers/measured fields are ignored, and the
  /// job's result is the final band's. Every band's operator tables go
  /// through the shared cache, so concurrent tenants on the same ladder
  /// share them rung by rung.
  std::vector<JobBand> bands;
};

enum class JobState { kQueued, kRunning, kCompleted, kCancelled, kFailed };

struct JobStatus {
  JobState state = JobState::kQueued;
  int iterations = 0;         // completed DBIM iterations (all bands)
  std::uint64_t steps = 0;    // scheduler ticks consumed
  double compute_seconds = 0.0;
  double last_residual = 0.0;  // NaN until the first iteration reports
  std::string error;           // kFailed: what() of the escaping exception
  /// Multi-frequency jobs: band currently running (or, when terminal,
  /// the band the job ended on). 0 for single-frequency jobs.
  int band = 0;
};

struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::uint64_t steps = 0;
  double compute_seconds = 0.0;
  int pool_restarts = 0;
};

struct ServiceOptions {
  /// Concurrency admission cap: at most this many jobs hold runtime
  /// state (engine + stepper) at once; the rest wait in the queue.
  int max_active_jobs = 4;
  /// Supervisor retries after a pool-level CommFailure; 0 rethrows the
  /// first failure to the caller.
  int max_pool_restarts = 0;
  /// Fault-injection hook for tests: at this global scheduler tick the
  /// stepping worker throws RankFailure (fires once; -1 disables).
  long long inject_rank_failure_at_tick = -1;
};

class ReconstructionService {
 public:
  explicit ReconstructionService(OperatorTableCache& cache,
                                 const ServiceOptions& opts = {});

  /// Enqueues a job; returns its id. Thread-safe; may be called while
  /// run() is draining (the pool picks the job up on the next tick).
  int submit(JobSpec spec);

  /// Requests cancellation: a queued job cancels immediately, a running
  /// job stops after its current step (its partial result is kept).
  /// Returns false if the job is unknown or already terminal.
  bool cancel(int job_id);

  JobStatus status(int job_id) const;

  /// Result of a completed (or cancelled mid-run) job.
  const DbimResult& result(int job_id) const;

  /// Drains the queue over the cluster's rank pool; returns when every
  /// job is terminal. Restarts the pool after CommFailures up to
  /// ServiceOptions::max_pool_restarts (the failing tick's job is
  /// marked kFailed; all other jobs are unaffected).
  void run(VCluster& vc);

  ServiceStats stats() const;

 private:
  struct Job {
    int id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    bool busy = false;              // a worker is stepping/building it
    bool cancel_requested = false;
    std::uint64_t steps = 0;
    int iterations = 0;
    double last_residual = 0.0;
    double compute_seconds = 0.0;
    std::string error;
    // Multi-frequency ladder position: active band, iterations spent in
    // completed bands, and the warm-start image handed down the ladder.
    int band = 0;
    int iterations_base = 0;
    cvec warm_start;
    DbimCheckpoint last_checkpoint;  // in-memory resume state
    bool has_checkpoint = false;
    // Runtime (released when the job reaches a terminal state; tables
    // stay alive in the cache for the next tenant).
    std::shared_ptr<const OperatorTables> tables;
    std::shared_ptr<const TransceiverTables> trx_tables;
    std::unique_ptr<MlfmaEngine> engine;
    std::unique_ptr<DbimStepper> stepper;
    std::optional<DbimResult> result;
  };

  void worker_loop(Comm& comm);
  void admit_locked();
  Job* pick_least_time_locked();
  bool all_terminal_locked() const;
  void build_runtime(Job& job);
  void release_runtime_locked(Job& job);

  OperatorTableCache& cache_;
  ServiceOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<int> queue_;  // submitted, not yet admitted (id order)
  long long tick_ = 0;
  bool injected_ = false;
  int pool_restarts_ = 0;
};

}  // namespace ffw
