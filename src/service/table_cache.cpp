#include "service/table_cache.hpp"

#include <bit>
#include <utility>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "obs/obs.hpp"

namespace ffw {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

void fnv_mix_double(std::uint64_t& h, double v) {
  fnv_mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t hash_positions(const std::vector<Vec2>& tx,
                             const std::vector<Vec2>& rx) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, tx.size());
  for (const Vec2& p : tx) {
    fnv_mix_double(h, p.x);
    fnv_mix_double(h, p.y);
  }
  fnv_mix(h, rx.size());
  for (const Vec2& p : rx) {
    fnv_mix_double(h, p.x);
    fnv_mix_double(h, p.y);
  }
  return h;
}

std::size_t TableKeyHash::operator()(const TableKey& k) const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(k.kind));
  fnv_mix(h, static_cast<std::uint64_t>(k.nx));
  fnv_mix_double(h, k.pixel_h);
  fnv_mix(h, static_cast<std::uint64_t>(k.leaf_pixel_side));
  fnv_mix_double(h, k.digits);
  fnv_mix_double(h, k.oversample);
  fnv_mix(h, static_cast<std::uint64_t>(k.interp_width));
  fnv_mix(h, static_cast<std::uint64_t>(k.precision));
  fnv_mix(h, k.geometry_hash);
  return static_cast<std::size_t>(h);
}

TransceiverTables::TransceiverTables(const Grid& g, std::vector<Vec2> tx,
                                     std::vector<Vec2> rx)
    : grid(g), trx(grid, std::move(tx), std::move(rx)) {
  Timer timer;
  const std::size_t n = grid.num_pixels();
  const int nt = trx.num_transmitters();
  incident_panel.resize(n * static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    const cvec col = trx.incident_field(t);
    std::copy(col.begin(), col.end(),
              incident_panel.begin() + static_cast<std::size_t>(t) * n);
  }
  build_seconds = timer.seconds();
}

std::size_t TransceiverTables::bytes() const {
  std::size_t s = incident_panel.size() * sizeof(cplx);
  if (trx.gr_materialized()) {
    s += static_cast<std::size_t>(trx.num_receivers()) * grid.num_pixels() *
         sizeof(cplx);
  }
  return s;
}

OperatorTableCache::OperatorTableCache(std::size_t budget_bytes)
    : budget_(budget_bytes) {}

std::shared_ptr<const void> OperatorTableCache::acquire(
    const TableKey& key, const std::function<Built()>& build) {
  std::promise<std::shared_ptr<const void>> promise;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Hit — including a build still in flight: the waiter pays nothing
      // but the wait, which is the whole point of single-flight.
      ++hits_;
      obs::add(obs::Counter::kTableCacheHits, 1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      auto future = it->second.future;
      lock.unlock();
      return future.get();  // rethrows the builder's exception, if any
    }
    ++misses_;
    obs::add(obs::Counter::kTableCacheMisses, 1);
    lru_.push_front(key);
    Entry e;
    e.future = promise.get_future().share();
    e.lru_it = lru_.begin();
    entries_.emplace(key, std::move(e));
  }
  // Build outside the lock: misses on unrelated keys proceed in
  // parallel, and a slow build never blocks cache hits.
  Built built;
  try {
    built = build();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        lru_.erase(it->second.lru_it);
        entries_.erase(it);
      }
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    build_seconds_ += built.build_seconds;
    obs::add(obs::Counter::kTableBuildNs,
             static_cast<std::int64_t>(built.build_seconds * 1e9));
    // clear() may have raced the build and dropped the entry — then the
    // artifact is simply handed to the waiters without being resident.
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.bytes = built.bytes;
      it->second.ready = true;
      bytes_ += built.bytes;
      evict_locked();
    }
  }
  promise.set_value(built.ptr);
  return built.ptr;
}

void OperatorTableCache::evict_locked() {
  // Walk from the LRU end; never touch in-flight builds or the MRU
  // entry (evicting what was just inserted would thrash).
  auto it = lru_.end();
  while (bytes_ > budget_ && it != lru_.begin()) {
    --it;
    if (it == lru_.begin()) break;  // keep the MRU entry resident
    auto eit = entries_.find(*it);
    FFW_CHECK(eit != entries_.end());
    if (!eit->second.ready) continue;
    bytes_ -= eit->second.bytes;
    ++evictions_;
    obs::add(obs::Counter::kTableCacheEvictions, 1);
    entries_.erase(eit);
    it = lru_.erase(it);
  }
}

std::shared_ptr<const OperatorTables> OperatorTableCache::mlfma_tables(
    const Grid& grid, int leaf_pixel_side, const MlfmaParams& params) {
  TableKey key;
  key.kind = TableKey::Kind::kMlfma;
  key.nx = grid.nx();
  key.pixel_h = grid.h();
  key.leaf_pixel_side = leaf_pixel_side;
  key.digits = params.digits;
  key.oversample = params.oversample;
  key.interp_width = params.interp_width;
  key.precision = params.precision;
  auto ptr = acquire(key, [&]() -> Built {
    auto tables =
        std::make_shared<const OperatorTables>(grid, leaf_pixel_side, params);
    return {tables, tables->bytes(), tables->build_seconds()};
  });
  return std::static_pointer_cast<const OperatorTables>(ptr);
}

std::shared_ptr<const CbsTables> OperatorTableCache::cbs_tables(
    const Grid& grid, Precision precision) {
  TableKey key;
  key.kind = TableKey::Kind::kCbs;
  key.nx = grid.nx();
  key.pixel_h = grid.h();
  key.precision = precision;
  auto ptr = acquire(key, [&]() -> Built {
    auto tables = std::make_shared<const CbsTables>(grid, precision);
    return {tables, tables->bytes(), tables->build_seconds};
  });
  return std::static_pointer_cast<const CbsTables>(ptr);
}

std::shared_ptr<const TransceiverTables> OperatorTableCache::transceiver_tables(
    const Grid& grid, const std::vector<Vec2>& tx,
    const std::vector<Vec2>& rx) {
  TableKey key;
  key.kind = TableKey::Kind::kTransceivers;
  key.nx = grid.nx();
  key.pixel_h = grid.h();
  key.geometry_hash = hash_positions(tx, rx);
  auto ptr = acquire(key, [&]() -> Built {
    auto tables = std::make_shared<const TransceiverTables>(grid, tx, rx);
    return {tables, tables->bytes(), tables->build_seconds};
  });
  return std::static_pointer_cast<const TransceiverTables>(ptr);
}

void OperatorTableCache::set_budget(std::size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = budget_bytes;
  evict_locked();
}

void OperatorTableCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // In-flight builds keep their promise; dropping the entry just means
  // the next lookup rebuilds. Live hand-outs stay valid (shared_ptr).
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

OperatorTableCache::Stats OperatorTableCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  s.budget = budget_;
  s.build_seconds = build_seconds_;
  return s;
}

}  // namespace ffw
