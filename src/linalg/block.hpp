// Multi-RHS (blocked) vector layout and kernels.
//
// A *block vector* packs `nrhs` same-length vectors so that the MLFMA
// engine can amortise every operator table over all right-hand sides
// (see DESIGN.md "Blocked MLFMA execution"). The layout is
// panel-interleaved: the index space is split into `npanels` panels of
// `panel` contiguous elements (for solver vectors a panel is one leaf
// cluster, panel = pixels_per_leaf), and each panel stores its nrhs
// columns back to back:
//
//   element (panel c, column r, offset i)  ->  (c * nrhs + r) * panel + i
//
// With nrhs == 1 this degenerates to the plain contiguous vector, which
// is why the single-vector engine paths are just the nrhs == 1 case of
// the blocked ones. Column-major full vectors are the `npanels == 1`
// special case, so the block BiCGStab below works on either layout.
#pragma once

#include <cstdint>
#include <span>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ffw {

struct BlockLayout {
  std::size_t panel = 0;    // contiguous elements per panel per column
  std::size_t nrhs = 1;     // number of columns in the block
  std::size_t npanels = 0;  // number of panels

  /// Per-column vector length.
  std::size_t rows() const { return panel * npanels; }
  /// Total block storage.
  std::size_t size() const { return panel * nrhs * npanels; }
  /// Offset of (panel c, column r).
  std::size_t at(std::size_t c, std::size_t r) const {
    return (c * nrhs + r) * panel;
  }
};

/// <x_r, y_r> for column r (conjugate-linear in x).
cplx block_col_dot(const BlockLayout& lo, ccspan x, ccspan y, std::size_t r);

/// ||x_r||^2 for column r.
double block_col_nrm2_sq(const BlockLayout& lo, ccspan x, std::size_t r);

/// Gather column r into a contiguous vector of length lo.rows().
void block_col_get(const BlockLayout& lo, ccspan x, std::size_t r, cspan out);

/// Scatter a contiguous vector into column r.
void block_col_set(const BlockLayout& lo, cspan x, std::size_t r, ccspan in);

/// y_{r} = d .* x_{r} for every column, where d is a per-row diagonal of
/// length lo.rows() in the same (panel-contiguous) row order.
void block_diag_mul(const BlockLayout& lo, ccspan d, ccspan x, cspan y);

/// y_{r} = conj(d) .* x_{r} for every column.
void block_diag_mul_conj(const BlockLayout& lo, ccspan d, ccspan x, cspan y);

/// Pack `nrhs` natural-order columns (column-major, column stride
/// perm.size()) into a block vector in cluster order:
///   out[(c*nrhs + r)*panel + i] = nat[r * n + perm[c*panel + i]].
void block_pack_natural(const BlockLayout& lo,
                        std::span<const std::uint32_t> perm, ccspan nat,
                        cspan out);

/// Inverse of block_pack_natural.
void block_unpack_natural(const BlockLayout& lo,
                          std::span<const std::uint32_t> perm, ccspan blk,
                          cspan nat);

}  // namespace ffw
