// Dense column-major complex matrix. Column-major is chosen so that the
// MLFMA expansion operators (tall Q x 64 matrices applied to batches of
// cluster vectors) stream contiguously in the GEMM micro-kernel.
#pragma once

#include <cstddef>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ffw {

class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  cplx& operator()(std::size_t r, std::size_t c) {
    FFW_DCHECK(r < rows_ && c < cols_);
    return data_[c * rows_ + r];
  }
  cplx operator()(std::size_t r, std::size_t c) const {
    FFW_DCHECK(r < rows_ && c < cols_);
    return data_[c * rows_ + r];
  }

  cplx* data() { return data_.data(); }
  const cplx* data() const { return data_.data(); }

  cspan col(std::size_t c) {
    FFW_DCHECK(c < cols_);
    return cspan{data_.data() + c * rows_, rows_};
  }
  ccspan col(std::size_t c) const {
    FFW_DCHECK(c < cols_);
    return ccspan{data_.data() + c * rows_, rows_};
  }

  void fill(cplx v) { std::fill(data_.begin(), data_.end(), v); }

  /// Conjugate (Hermitian) transpose, A^H.
  CMatrix hermitian() const;
  /// Plain transpose, A^T.
  CMatrix transpose() const;

  /// Frobenius norm.
  double fro_norm() const;

  /// Memory footprint in bytes (for the storage-complexity census).
  std::size_t bytes() const { return data_.size() * sizeof(cplx); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  cvec data_;
};

/// y = A * x (sizes checked).
void matvec(const CMatrix& a, ccspan x, cspan y);
/// y += A * x.
void matvec_acc(const CMatrix& a, ccspan x, cspan y);
/// y = A^H * x.
void matvec_herm(const CMatrix& a, ccspan x, cspan y);

}  // namespace ffw
