// Complex vector kernels used by the Krylov solvers and the DBIM
// optimiser. Kept free-standing so hot loops stay simple for the
// vectoriser.
//
// Each kernel exists for both scalar widths (one shared template body in
// kernels.cpp): the fp64 overloads serve the solvers, the fp32 overloads
// the mixed MLFMA pipeline's panel manipulation. Reductions (cdot, nrm2)
// accumulate in double regardless of the storage scalar — the mixed
// path's policy is "narrow storage, wide arithmetic at reductions".
#pragma once

#include "common/types.hpp"

namespace ffw {

/// <x, y> = sum conj(x_i) * y_i  (inner product, conjugate-linear in x).
cplx cdot(ccspan x, ccspan y);
cplx cdot(ccspan32 x, ccspan32 y);

/// 2-norm.
double nrm2(ccspan x);
double nrm2(ccspan32 x);

/// y += a * x.
void axpy(cplx a, ccspan x, cspan y);
void axpy(cplx32 a, ccspan32 x, cspan32 y);

/// y = x + a * y  (BiCGStab's xpay update).
void xpay(ccspan x, cplx a, cspan y);

/// x *= a.
void scal(cplx a, cspan x);
void scal(cplx32 a, cspan32 x);

/// y = x.
void copy(ccspan x, cspan y);
void copy(ccspan32 x, cspan32 y);

/// out = a - b.
void sub(ccspan a, ccspan b, cspan out);

/// Pointwise y_i = d_i * x_i (diagonal operator).
void diag_mul(ccspan d, ccspan x, cspan y);
void diag_mul(ccspan32 d, ccspan32 x, cspan32 y);

/// Pointwise y_i += d_i * x_i.
void diag_mul_acc(ccspan d, ccspan x, cspan y);
void diag_mul_acc(ccspan32 d, ccspan32 x, cspan32 y);

/// Pointwise y_i = conj(d_i) * x_i (adjoint of a diagonal operator).
void diag_mul_conj(ccspan d, ccspan x, cspan y);

/// Precision conversion: y_i = (cplx32) x_i and y_i = (cplx) x_i. The
/// narrowing pass is the mixed engine's once-per-apply entry cost; the
/// widening pass returns fp32 spectra (e.g. upward_only's top panel) to
/// fp64 consumers.
void narrow(ccspan x, cspan32 y);
void widen(ccspan32 x, cspan y);

/// max_i |x_i - y_i| / max_i |y_i| — relative max-norm difference.
double rel_max_diff(ccspan x, ccspan y);

/// ||x - y||_2 / ||y||_2.
double rel_l2_diff(ccspan x, ccspan y);

}  // namespace ffw
