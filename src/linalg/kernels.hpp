// Complex vector kernels used by the Krylov solvers and the DBIM
// optimiser. Kept free-standing so hot loops stay simple for the
// vectoriser.
#pragma once

#include "common/types.hpp"

namespace ffw {

/// <x, y> = sum conj(x_i) * y_i  (inner product, conjugate-linear in x).
cplx cdot(ccspan x, ccspan y);

/// 2-norm.
double nrm2(ccspan x);

/// y += a * x.
void axpy(cplx a, ccspan x, cspan y);

/// y = x + a * y  (BiCGStab's xpay update).
void xpay(ccspan x, cplx a, cspan y);

/// x *= a.
void scal(cplx a, cspan x);

/// y = x.
void copy(ccspan x, cspan y);

/// out = a - b.
void sub(ccspan a, ccspan b, cspan out);

/// Pointwise y_i = d_i * x_i (diagonal operator).
void diag_mul(ccspan d, ccspan x, cspan y);

/// Pointwise y_i += d_i * x_i.
void diag_mul_acc(ccspan d, ccspan x, cspan y);

/// Pointwise y_i = conj(d_i) * x_i (adjoint of a diagonal operator).
void diag_mul_conj(ccspan d, ccspan x, cspan y);

/// max_i |x_i - y_i| / max_i |y_i| — relative max-norm difference.
double rel_max_diff(ccspan x, ccspan y);

/// ||x - y||_2 / ||y||_2.
double rel_l2_diff(ccspan x, ccspan y);

}  // namespace ffw
