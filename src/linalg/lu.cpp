#include "linalg/lu.hpp"

#include <cmath>

namespace ffw {

LuFactors::LuFactors(CMatrix a) : lu_(std::move(a)), perm_(lu_.rows()) {
  FFW_CHECK_MSG(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at or below the diagonal.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    FFW_CHECK_MSG(best > 0.0, "singular matrix in LU");
    perm_[k] = piv;
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(piv, c));
    }
    const cplx dk = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const cplx m = lu_(r, k) / dk;
      lu_(r, k) = m;
      if (m == cplx{0.0}) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

cvec LuFactors::solve(ccspan b) const {
  const std::size_t n = dim();
  FFW_CHECK(b.size() == n);
  cvec x(b.begin(), b.end());
  // Apply all row interchanges first: the stored L lives in the *final*
  // row ordering (factorisation swaps whole rows, multipliers included),
  // so P b must be formed completely before forward substitution.
  for (std::size_t k = 0; k < n; ++k) {
    if (perm_[k] != k) std::swap(x[k], x[perm_[k]]);
  }
  for (std::size_t k = 0; k < n; ++k) {  // L y = P b (unit lower)
    for (std::size_t r = k + 1; r < n; ++r) x[r] -= lu_(r, k) * x[k];
  }
  for (std::size_t k = n; k-- > 0;) {  // back substitution
    for (std::size_t c = k + 1; c < n; ++c) x[k] -= lu_(k, c) * x[c];
    x[k] /= lu_(k, k);
  }
  return x;
}

cvec LuFactors::solve_herm(ccspan b) const {
  // A = P^T L U  =>  A^H = U^H L^H P. Solve U^H y = b, then L^H z = y,
  // then x = P^T z (undo pivots in reverse).
  const std::size_t n = dim();
  FFW_CHECK(b.size() == n);
  cvec x(b.begin(), b.end());
  for (std::size_t k = 0; k < n; ++k) {  // U^H is lower triangular
    for (std::size_t c = 0; c < k; ++c) x[k] -= std::conj(lu_(c, k)) * x[c];
    x[k] /= std::conj(lu_(k, k));
  }
  for (std::size_t k = n; k-- > 0;) {  // L^H is unit upper triangular
    for (std::size_t r = k + 1; r < n; ++r) x[k] -= std::conj(lu_(r, k)) * x[r];
  }
  for (std::size_t k = n; k-- > 0;) {
    if (perm_[k] != k) std::swap(x[k], x[perm_[k]]);
  }
  return x;
}

double LuFactors::pivot_ratio() const {
  double lo = 1e300, hi = 0.0;
  for (std::size_t k = 0; k < dim(); ++k) {
    const double p = std::abs(lu_(k, k));
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  return hi > 0.0 ? lo / hi : 0.0;
}

cvec lu_solve(const CMatrix& a, ccspan b) { return LuFactors(a).solve(b); }

}  // namespace ffw
