#include "linalg/block.hpp"

namespace ffw {

cplx block_col_dot(const BlockLayout& lo, ccspan x, ccspan y, std::size_t r) {
  FFW_CHECK(x.size() == lo.size() && y.size() == lo.size() && r < lo.nrhs);
  cplx acc{};
  for (std::size_t c = 0; c < lo.npanels; ++c) {
    const cplx* xp = x.data() + lo.at(c, r);
    const cplx* yp = y.data() + lo.at(c, r);
    for (std::size_t i = 0; i < lo.panel; ++i)
      acc += std::conj(xp[i]) * yp[i];
  }
  return acc;
}

double block_col_nrm2_sq(const BlockLayout& lo, ccspan x, std::size_t r) {
  FFW_CHECK(x.size() == lo.size() && r < lo.nrhs);
  double acc = 0.0;
  for (std::size_t c = 0; c < lo.npanels; ++c) {
    const cplx* xp = x.data() + lo.at(c, r);
    for (std::size_t i = 0; i < lo.panel; ++i) acc += std::norm(xp[i]);
  }
  return acc;
}

void block_col_get(const BlockLayout& lo, ccspan x, std::size_t r, cspan out) {
  FFW_CHECK(x.size() == lo.size() && out.size() == lo.rows() && r < lo.nrhs);
  for (std::size_t c = 0; c < lo.npanels; ++c) {
    const cplx* xp = x.data() + lo.at(c, r);
    cplx* op = out.data() + c * lo.panel;
    for (std::size_t i = 0; i < lo.panel; ++i) op[i] = xp[i];
  }
}

void block_col_set(const BlockLayout& lo, cspan x, std::size_t r, ccspan in) {
  FFW_CHECK(x.size() == lo.size() && in.size() == lo.rows() && r < lo.nrhs);
  for (std::size_t c = 0; c < lo.npanels; ++c) {
    cplx* xp = x.data() + lo.at(c, r);
    const cplx* ip = in.data() + c * lo.panel;
    for (std::size_t i = 0; i < lo.panel; ++i) xp[i] = ip[i];
  }
}

void block_diag_mul(const BlockLayout& lo, ccspan d, ccspan x, cspan y) {
  FFW_CHECK(d.size() == lo.rows() && x.size() == lo.size() &&
            y.size() == lo.size());
  for (std::size_t c = 0; c < lo.npanels; ++c) {
    const cplx* dp = d.data() + c * lo.panel;
    for (std::size_t r = 0; r < lo.nrhs; ++r) {
      const cplx* xp = x.data() + lo.at(c, r);
      cplx* yp = y.data() + lo.at(c, r);
      for (std::size_t i = 0; i < lo.panel; ++i) yp[i] = dp[i] * xp[i];
    }
  }
}

void block_diag_mul_conj(const BlockLayout& lo, ccspan d, ccspan x, cspan y) {
  FFW_CHECK(d.size() == lo.rows() && x.size() == lo.size() &&
            y.size() == lo.size());
  for (std::size_t c = 0; c < lo.npanels; ++c) {
    const cplx* dp = d.data() + c * lo.panel;
    for (std::size_t r = 0; r < lo.nrhs; ++r) {
      const cplx* xp = x.data() + lo.at(c, r);
      cplx* yp = y.data() + lo.at(c, r);
      for (std::size_t i = 0; i < lo.panel; ++i)
        yp[i] = std::conj(dp[i]) * xp[i];
    }
  }
}

void block_pack_natural(const BlockLayout& lo,
                        std::span<const std::uint32_t> perm, ccspan nat,
                        cspan out) {
  const std::size_t n = lo.rows();
  FFW_CHECK(perm.size() == n && nat.size() == n * lo.nrhs &&
            out.size() == lo.size());
  for (std::size_t c = 0; c < lo.npanels; ++c) {
    const std::uint32_t* pp = perm.data() + c * lo.panel;
    for (std::size_t r = 0; r < lo.nrhs; ++r) {
      const cplx* np = nat.data() + r * n;
      cplx* op = out.data() + lo.at(c, r);
      for (std::size_t i = 0; i < lo.panel; ++i) op[i] = np[pp[i]];
    }
  }
}

void block_unpack_natural(const BlockLayout& lo,
                          std::span<const std::uint32_t> perm, ccspan blk,
                          cspan nat) {
  const std::size_t n = lo.rows();
  FFW_CHECK(perm.size() == n && blk.size() == lo.size() &&
            nat.size() == n * lo.nrhs);
  for (std::size_t c = 0; c < lo.npanels; ++c) {
    const std::uint32_t* pp = perm.data() + c * lo.panel;
    for (std::size_t r = 0; r < lo.nrhs; ++r) {
      cplx* np = nat.data() + r * n;
      const cplx* bp = blk.data() + lo.at(c, r);
      for (std::size_t i = 0; i < lo.panel; ++i) np[pp[i]] = bp[i];
    }
  }
}

}  // namespace ffw
