// Blocked complex GEMM. The paper implements the MLFMA multipole/local
// expansions as dense matrix-matrix multiplications for data reuse
// (Sec. IV-D); this is the kernel that realises them on the CPU.
#pragma once

#include "linalg/cmatrix.hpp"

namespace ffw {

/// C = alpha * A * B + beta * C.
void gemm(cplx alpha, const CMatrix& a, const CMatrix& b, cplx beta,
          CMatrix& c);

/// C = alpha * A^H * B + beta * C.
void gemm_herm_a(cplx alpha, const CMatrix& a, const CMatrix& b, cplx beta,
                 CMatrix& c);

/// Raw-pointer variant over column-major blocks:
/// C(m x n) = alpha * A(m x k) * B(k x n) + beta * C, with leading
/// dimensions lda/ldb/ldc. Used by the MLFMA engine where cluster data
/// lives inside larger level-wide arrays.
void gemm_raw(std::size_t m, std::size_t n, std::size_t k, cplx alpha,
              const cplx* a, std::size_t lda, const cplx* b, std::size_t ldb,
              cplx beta, cplx* c, std::size_t ldc);

/// Same but with A conjugate-transposed: C = alpha * A^H * B + beta * C,
/// where A is stored (k x m) column-major.
void gemm_herm_raw(std::size_t m, std::size_t n, std::size_t k, cplx alpha,
                   const cplx* a, std::size_t lda, const cplx* b,
                   std::size_t ldb, cplx beta, cplx* c, std::size_t ldc);

}  // namespace ffw
