// Blocked complex GEMM. The paper implements the MLFMA multipole/local
// expansions as dense matrix-matrix multiplications for data reuse
// (Sec. IV-D); this is the kernel that realises them on the CPU.
//
// The raw kernel is templated over a *storage* scalar TS (what A and B
// stream from memory) and an *accumulation/destination* scalar TD (what
// C holds and what the inner products accumulate in), so one micro-kernel
// serves the three precision modes of the engine:
//   TS = TD = double  — the all-fp64 reference path;
//   TS = TD = float   — fp32 spectra panels inside the mixed pipeline
//                       (twice the SIMD lanes, half the streamed bytes);
//   TS = float, TD = double — the mixed pipeline's leaf boundaries:
//                       fp32 tables/panels accumulated into the fp64
//                       solver vector (DESIGN.md Sec. 10).
#pragma once

#include "linalg/cmatrix.hpp"

namespace ffw {

/// C = alpha * A * B + beta * C.
void gemm(cplx alpha, const CMatrix& a, const CMatrix& b, cplx beta,
          CMatrix& c);

/// C = alpha * A^H * B + beta * C.
void gemm_herm_a(cplx alpha, const CMatrix& a, const CMatrix& b, cplx beta,
                 CMatrix& c);

/// Raw-pointer variant over column-major blocks:
/// C(m x n) = alpha * A(m x k) * B(k x n) + beta * C, with leading
/// dimensions lda/ldb/ldc. A and B stream as complex<TS>; C and all
/// accumulation are complex<TD>. Used by the MLFMA engine where cluster
/// data lives inside larger level-wide arrays.
template <typename TS, typename TD>
void gemm_raw_t(std::size_t m, std::size_t n, std::size_t k,
                std::complex<TD> alpha, const std::complex<TS>* a,
                std::size_t lda, const std::complex<TS>* b, std::size_t ldb,
                std::complex<TD> beta, std::complex<TD>* c, std::size_t ldc);

extern template void gemm_raw_t<double, double>(
    std::size_t, std::size_t, std::size_t, cplx, const cplx*, std::size_t,
    const cplx*, std::size_t, cplx, cplx*, std::size_t);
extern template void gemm_raw_t<float, float>(
    std::size_t, std::size_t, std::size_t, cplx32, const cplx32*, std::size_t,
    const cplx32*, std::size_t, cplx32, cplx32*, std::size_t);
extern template void gemm_raw_t<float, double>(
    std::size_t, std::size_t, std::size_t, cplx, const cplx32*, std::size_t,
    const cplx32*, std::size_t, cplx, cplx*, std::size_t);

/// All-fp64 path (the historical entry point).
inline void gemm_raw(std::size_t m, std::size_t n, std::size_t k, cplx alpha,
                     const cplx* a, std::size_t lda, const cplx* b,
                     std::size_t ldb, cplx beta, cplx* c, std::size_t ldc) {
  gemm_raw_t<double, double>(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

/// All-fp32 path (interior of the mixed MLFMA pipeline).
inline void gemm_raw(std::size_t m, std::size_t n, std::size_t k,
                     cplx32 alpha, const cplx32* a, std::size_t lda,
                     const cplx32* b, std::size_t ldb, cplx32 beta, cplx32* c,
                     std::size_t ldc) {
  gemm_raw_t<float, float>(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

/// Mixed path: fp32 operands, fp64 accumulation and destination.
inline void gemm_raw(std::size_t m, std::size_t n, std::size_t k, cplx alpha,
                     const cplx32* a, std::size_t lda, const cplx32* b,
                     std::size_t ldb, cplx beta, cplx* c, std::size_t ldc) {
  gemm_raw_t<float, double>(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

/// Mixed leaf-expansion kernel: C32(m x n) = A32(m x k) * B32(k x n).
/// The rank-1 MACs run in fp32 over short k-chunks and are promoted
/// into an fp64 register tile between chunks, so the full k-long
/// accumulation chain is fp64 while the bulk of the arithmetic keeps
/// fp32 SIMD width; the result is rounded once into the fp32 panel.
/// Used at the leaf-expansion accumulation boundary of the mixed MLFMA
/// engine (m = level-0 sample count, expected small).
void gemm_expand_mixed(std::size_t m, std::size_t n, std::size_t k,
                       const cplx32* a, std::size_t lda, const cplx32* b,
                       std::size_t ldb, cplx32* c, std::size_t ldc);

/// Same but with A conjugate-transposed: C = alpha * A^H * B + beta * C,
/// where A is stored (k x m) column-major.
void gemm_herm_raw(std::size_t m, std::size_t n, std::size_t k, cplx alpha,
                   const cplx* a, std::size_t lda, const cplx* b,
                   std::size_t ldb, cplx beta, cplx* c, std::size_t ldc);

}  // namespace ffw
