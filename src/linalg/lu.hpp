// Dense LU factorisation with partial pivoting. This is the O(N^3)
// direct solver the paper contrasts against (Sec. I); we use it as the
// exact reference for small problems in tests and as the dense forward
// solver in `forward/dense_ref`.
#pragma once

#include <vector>

#include "linalg/cmatrix.hpp"

namespace ffw {

class LuFactors {
 public:
  /// Factor A = P * L * U in place (A is copied). Aborts on exactly
  /// singular pivots; `nearly_singular()` reports pivot conditioning.
  explicit LuFactors(CMatrix a);

  /// Solve A x = b. b.size() == n.
  cvec solve(ccspan b) const;

  /// Solve A^H x = b (uses U^H L^H P^T without refactoring).
  cvec solve_herm(ccspan b) const;

  /// Ratio of smallest to largest |pivot| — a cheap conditioning probe.
  double pivot_ratio() const;

  std::size_t dim() const { return lu_.rows(); }

  /// Packed factors (column-major; unit-lower L multipliers below the
  /// diagonal, U on and above) and the pivot row chosen at each step —
  /// exposed so batched consumers (forward/precond.hpp packs one LU per
  /// leaf) can copy the factorisation into their own storage layout.
  const CMatrix& factors() const { return lu_; }
  const std::vector<std::size_t>& pivots() const { return perm_; }

 private:
  CMatrix lu_;
  std::vector<std::size_t> perm_;  // row permutation: pivot row at step k
};

/// Determinant-free convenience: solve A x = b with a one-shot LU.
cvec lu_solve(const CMatrix& a, ccspan b);

}  // namespace ffw
