#include "linalg/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ffw {

cplx cdot(ccspan x, ccspan y) {
  FFW_DCHECK(x.size() == y.size());
  cplx acc{};
  for (std::size_t i = 0; i < x.size(); ++i) acc += std::conj(x[i]) * y[i];
  return acc;
}

double nrm2(ccspan x) {
  double s = 0.0;
  for (const cplx& v : x) s += std::norm(v);
  return std::sqrt(s);
}

void axpy(cplx a, ccspan x, cspan y) {
  FFW_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void xpay(ccspan x, cplx a, cspan y) {
  FFW_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + a * y[i];
}

void scal(cplx a, cspan x) {
  for (cplx& v : x) v *= a;
}

void copy(ccspan x, cspan y) {
  FFW_DCHECK(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

void sub(ccspan a, ccspan b, cspan out) {
  FFW_DCHECK(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

void diag_mul(ccspan d, ccspan x, cspan y) {
  FFW_DCHECK(d.size() == x.size() && x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = d[i] * x[i];
}

void diag_mul_acc(ccspan d, ccspan x, cspan y) {
  FFW_DCHECK(d.size() == x.size() && x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += d[i] * x[i];
}

void diag_mul_conj(ccspan d, ccspan x, cspan y) {
  FFW_DCHECK(d.size() == x.size() && x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::conj(d[i]) * x[i];
}

double rel_max_diff(ccspan x, ccspan y) {
  FFW_CHECK(x.size() == y.size());
  double dmax = 0.0, ymax = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    dmax = std::max(dmax, std::abs(x[i] - y[i]));
    ymax = std::max(ymax, std::abs(y[i]));
  }
  return ymax > 0.0 ? dmax / ymax : dmax;
}

double rel_l2_diff(ccspan x, ccspan y) {
  FFW_CHECK(x.size() == y.size());
  double d = 0.0, n = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    d += std::norm(x[i] - y[i]);
    n += std::norm(y[i]);
  }
  return n > 0.0 ? std::sqrt(d / n) : std::sqrt(d);
}

}  // namespace ffw
