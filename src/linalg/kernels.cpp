#include "linalg/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ffw {

namespace {

// Shared loop bodies over the storage scalar T; reductions accumulate in
// double for both widths (mixed-precision policy: narrow storage, wide
// arithmetic at reductions).
template <typename T>
cplx cdot_impl(std::span<const std::complex<T>> x,
               std::span<const std::complex<T>> y) {
  FFW_DCHECK(x.size() == y.size());
  cplx acc{};
  for (std::size_t i = 0; i < x.size(); ++i)
    acc += std::conj(cplx{x[i]}) * cplx{y[i]};
  return acc;
}

template <typename T>
double nrm2_impl(std::span<const std::complex<T>> x) {
  double s = 0.0;
  for (const std::complex<T>& v : x) s += std::norm(cplx{v});
  return std::sqrt(s);
}

template <typename T>
void axpy_impl(std::complex<T> a, std::span<const std::complex<T>> x,
               std::span<std::complex<T>> y) {
  FFW_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

template <typename T>
void scal_impl(std::complex<T> a, std::span<std::complex<T>> x) {
  for (std::complex<T>& v : x) v *= a;
}

template <typename T>
void diag_mul_impl(std::span<const std::complex<T>> d,
                   std::span<const std::complex<T>> x,
                   std::span<std::complex<T>> y) {
  FFW_DCHECK(d.size() == x.size() && x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = d[i] * x[i];
}

template <typename T>
void diag_mul_acc_impl(std::span<const std::complex<T>> d,
                       std::span<const std::complex<T>> x,
                       std::span<std::complex<T>> y) {
  FFW_DCHECK(d.size() == x.size() && x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += d[i] * x[i];
}

}  // namespace

cplx cdot(ccspan x, ccspan y) { return cdot_impl<double>(x, y); }
cplx cdot(ccspan32 x, ccspan32 y) { return cdot_impl<float>(x, y); }

double nrm2(ccspan x) { return nrm2_impl<double>(x); }
double nrm2(ccspan32 x) { return nrm2_impl<float>(x); }

void axpy(cplx a, ccspan x, cspan y) { axpy_impl<double>(a, x, y); }
void axpy(cplx32 a, ccspan32 x, cspan32 y) { axpy_impl<float>(a, x, y); }

void xpay(ccspan x, cplx a, cspan y) {
  FFW_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + a * y[i];
}

void scal(cplx a, cspan x) { scal_impl<double>(a, x); }
void scal(cplx32 a, cspan32 x) { scal_impl<float>(a, x); }

void copy(ccspan x, cspan y) {
  FFW_DCHECK(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

void copy(ccspan32 x, cspan32 y) {
  FFW_DCHECK(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

void sub(ccspan a, ccspan b, cspan out) {
  FFW_DCHECK(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

void diag_mul(ccspan d, ccspan x, cspan y) { diag_mul_impl<double>(d, x, y); }
void diag_mul(ccspan32 d, ccspan32 x, cspan32 y) {
  diag_mul_impl<float>(d, x, y);
}

void diag_mul_acc(ccspan d, ccspan x, cspan y) {
  diag_mul_acc_impl<double>(d, x, y);
}
void diag_mul_acc(ccspan32 d, ccspan32 x, cspan32 y) {
  diag_mul_acc_impl<float>(d, x, y);
}

void diag_mul_conj(ccspan d, ccspan x, cspan y) {
  FFW_DCHECK(d.size() == x.size() && x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::conj(d[i]) * x[i];
}

void narrow(ccspan x, cspan32 y) {
  FFW_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = narrow(x[i]);
}

void widen(ccspan32 x, cspan y) {
  FFW_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = widen(x[i]);
}

double rel_max_diff(ccspan x, ccspan y) {
  FFW_CHECK(x.size() == y.size());
  double dmax = 0.0, ymax = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    dmax = std::max(dmax, std::abs(x[i] - y[i]));
    ymax = std::max(ymax, std::abs(y[i]));
  }
  return ymax > 0.0 ? dmax / ymax : dmax;
}

double rel_l2_diff(ccspan x, ccspan y) {
  FFW_CHECK(x.size() == y.size());
  double d = 0.0, n = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    d += std::norm(x[i] - y[i]);
    n += std::norm(y[i]);
  }
  return n > 0.0 ? std::sqrt(d / n) : std::sqrt(d);
}

}  // namespace ffw
