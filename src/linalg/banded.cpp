#include "linalg/banded.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ffw {

PeriodicBandMatrix::PeriodicBandMatrix(std::size_t rows, std::size_t cols,
                                       std::size_t width)
    : rows_(rows), cols_(cols), width_(width), w_(rows * width, 0.0),
      first_(rows, 0) {
  FFW_CHECK(width <= cols);
}

void PeriodicBandMatrix::apply(ccspan x, cspan y) const {
  FFW_CHECK(x.size() == cols_ && y.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* wr = w_.data() + r * width_;
    std::size_t c = first_[r];
    cplx acc{};
    for (std::size_t j = 0; j < width_; ++j) {
      acc += wr[j] * x[c];
      if (++c == cols_) c = 0;
    }
    y[r] = acc;
  }
}

void PeriodicBandMatrix::apply_adjoint(ccspan x, cspan y) const {
  FFW_CHECK(x.size() == rows_ && y.size() == cols_);
  std::fill(y.begin(), y.end(), cplx{});
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* wr = w_.data() + r * width_;
    std::size_t c = first_[r];
    const cplx xr = x[r];
    for (std::size_t j = 0; j < width_; ++j) {
      y[c] += wr[j] * xr;
      if (++c == cols_) c = 0;
    }
  }
}

namespace {

// Shared batched bodies over the value scalar T and coefficient scalar W.
// Row-outer so each row's stencil (coefficients + support columns) is
// read once and applied to all n block columns — the interp-table
// reuse that makes the blocked MLFMA aggregation level-3-like.
// The stencil of row r covers columns [first[r], first[r]+width) mod
// cols. Splitting that into the contiguous run and the wrapped tail
// removes the wrap branch from the inner loops (which is what lets them
// vectorize), the accumulators are explicit re/im scalars, and the
// block-column loop is outermost so one x column streams through all
// rows' stencils while it is cache-hot. Measured ~2x over the branchy
// row-outer form for both scalar widths on the level-interp shapes.
template <typename T, typename W>
void apply_batch_impl(std::size_t rows, std::size_t cols, std::size_t width,
                      const W* w, const std::uint32_t* first,
                      const std::complex<T>* x, std::size_t ldx,
                      std::complex<T>* y, std::size_t ldy, std::size_t n) {
  for (std::size_t b = 0; b < n; ++b) {
    const T* xb = reinterpret_cast<const T*>(x + b * ldx);
    std::complex<T>* yb = y + b * ldy;
    for (std::size_t r = 0; r < rows; ++r) {
      const W* wr = w + r * width;
      const std::size_t c0 = first[r];
      const std::size_t run = std::min(width, cols - c0);
      const T* xp = xb + 2 * c0;
      T accr{}, acci{};
      for (std::size_t j = 0; j < run; ++j) {
        const T wj = static_cast<T>(wr[j]);
        accr += wj * xp[2 * j];
        acci += wj * xp[2 * j + 1];
      }
      for (std::size_t j = run; j < width; ++j) {
        const T wj = static_cast<T>(wr[j]);
        accr += wj * xb[2 * (j - run)];
        acci += wj * xb[2 * (j - run) + 1];
      }
      yb[r] = std::complex<T>{accr, acci};
    }
  }
}

template <typename T, typename W>
void apply_adjoint_batch_impl(std::size_t rows, std::size_t cols,
                              std::size_t width, const W* w,
                              const std::uint32_t* first,
                              const std::complex<T>* x, std::size_t ldx,
                              std::complex<T>* y, std::size_t ldy,
                              std::size_t n) {
  for (std::size_t b = 0; b < n; ++b) {
    std::complex<T>* yc = y + b * ldy;
    std::fill(yc, yc + cols, std::complex<T>{});
    T* yb = reinterpret_cast<T*>(yc);
    for (std::size_t r = 0; r < rows; ++r) {
      const W* wr = w + r * width;
      const std::size_t c0 = first[r];
      const std::size_t run = std::min(width, cols - c0);
      const std::complex<T> xr = x[b * ldx + r];
      const T xrr = xr.real(), xri = xr.imag();
      T* yp = yb + 2 * c0;
      for (std::size_t j = 0; j < run; ++j) {
        const T wj = static_cast<T>(wr[j]);
        yp[2 * j] += wj * xrr;
        yp[2 * j + 1] += wj * xri;
      }
      for (std::size_t j = run; j < width; ++j) {
        const T wj = static_cast<T>(wr[j]);
        yb[2 * (j - run)] += wj * xrr;
        yb[2 * (j - run) + 1] += wj * xri;
      }
    }
  }
}

}  // namespace

void PeriodicBandMatrix::apply_batch(const cplx* x, std::size_t ldx, cplx* y,
                                     std::size_t ldy, std::size_t n) const {
  FFW_DCHECK(!w_.empty() || rows_ == 0);
  apply_batch_impl<double, double>(rows_, cols_, width_, w_.data(),
                                   first_.data(), x, ldx, y, ldy, n);
}

void PeriodicBandMatrix::apply_adjoint_batch(const cplx* x, std::size_t ldx,
                                             cplx* y, std::size_t ldy,
                                             std::size_t n) const {
  FFW_DCHECK(!w_.empty() || rows_ == 0);
  apply_adjoint_batch_impl<double, double>(rows_, cols_, width_, w_.data(),
                                           first_.data(), x, ldx, y, ldy, n);
}

void PeriodicBandMatrix::apply_batch(const cplx32* x, std::size_t ldx,
                                     cplx32* y, std::size_t ldy,
                                     std::size_t n) const {
  FFW_DCHECK(has_f32() || rows_ == 0);
  apply_batch_impl<float, float>(rows_, cols_, width_, wf_.data(),
                                 first_.data(), x, ldx, y, ldy, n);
}

void PeriodicBandMatrix::apply_adjoint_batch(const cplx32* x, std::size_t ldx,
                                             cplx32* y, std::size_t ldy,
                                             std::size_t n) const {
  FFW_DCHECK(has_f32() || rows_ == 0);
  apply_adjoint_batch_impl<float, float>(rows_, cols_, width_, wf_.data(),
                                         first_.data(), x, ldx, y, ldy, n);
}

void PeriodicBandMatrix::build_f32(bool drop_f64) {
  wf_.resize(w_.size());
  for (std::size_t i = 0; i < w_.size(); ++i)
    wf_[i] = static_cast<float>(w_[i]);
  if (drop_f64) {
    w_.clear();
    w_.shrink_to_fit();
  }
}

std::vector<std::vector<double>> PeriodicBandMatrix::to_dense() const {
  std::vector<std::vector<double>> d(rows_, std::vector<double>(cols_, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    std::size_t c = first_[r];
    for (std::size_t j = 0; j < width_; ++j) {
      d[r][c] += coeff(r, j);
      if (++c == cols_) c = 0;
    }
  }
  return d;
}

}  // namespace ffw
