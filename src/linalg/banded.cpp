#include "linalg/banded.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ffw {

PeriodicBandMatrix::PeriodicBandMatrix(std::size_t rows, std::size_t cols,
                                       std::size_t width)
    : rows_(rows), cols_(cols), width_(width), w_(rows * width, 0.0),
      first_(rows, 0) {
  FFW_CHECK(width <= cols);
}

void PeriodicBandMatrix::apply(ccspan x, cspan y) const {
  FFW_CHECK(x.size() == cols_ && y.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* wr = w_.data() + r * width_;
    std::size_t c = first_[r];
    cplx acc{};
    for (std::size_t j = 0; j < width_; ++j) {
      acc += wr[j] * x[c];
      if (++c == cols_) c = 0;
    }
    y[r] = acc;
  }
}

void PeriodicBandMatrix::apply_adjoint(ccspan x, cspan y) const {
  FFW_CHECK(x.size() == rows_ && y.size() == cols_);
  std::fill(y.begin(), y.end(), cplx{});
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* wr = w_.data() + r * width_;
    std::size_t c = first_[r];
    const cplx xr = x[r];
    for (std::size_t j = 0; j < width_; ++j) {
      y[c] += wr[j] * xr;
      if (++c == cols_) c = 0;
    }
  }
}

void PeriodicBandMatrix::apply_batch(const cplx* x, std::size_t ldx, cplx* y,
                                     std::size_t ldy, std::size_t n) const {
  // Row-outer so each row's stencil (coefficients + support columns) is
  // read once and applied to all n block columns — the interp-table
  // reuse that makes the blocked MLFMA aggregation level-3-like.
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* wr = w_.data() + r * width_;
    const std::size_t c0 = first_[r];
    for (std::size_t b = 0; b < n; ++b) {
      const cplx* xb = x + b * ldx;
      std::size_t c = c0;
      cplx acc{};
      for (std::size_t j = 0; j < width_; ++j) {
        acc += wr[j] * xb[c];
        if (++c == cols_) c = 0;
      }
      y[b * ldy + r] = acc;
    }
  }
}

void PeriodicBandMatrix::apply_adjoint_batch(const cplx* x, std::size_t ldx,
                                             cplx* y, std::size_t ldy,
                                             std::size_t n) const {
  for (std::size_t b = 0; b < n; ++b)
    std::fill(y + b * ldy, y + b * ldy + cols_, cplx{});
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* wr = w_.data() + r * width_;
    const std::size_t c0 = first_[r];
    for (std::size_t b = 0; b < n; ++b) {
      cplx* yb = y + b * ldy;
      const cplx xr = x[b * ldx + r];
      std::size_t c = c0;
      for (std::size_t j = 0; j < width_; ++j) {
        yb[c] += wr[j] * xr;
        if (++c == cols_) c = 0;
      }
    }
  }
}

std::vector<std::vector<double>> PeriodicBandMatrix::to_dense() const {
  std::vector<std::vector<double>> d(rows_, std::vector<double>(cols_, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    std::size_t c = first_[r];
    for (std::size_t j = 0; j < width_; ++j) {
      d[r][c] += coeff(r, j);
      if (++c == cols_) c = 0;
    }
  }
  return d;
}

}  // namespace ffw
