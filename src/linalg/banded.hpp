// Band matrices with periodic (circulant-band) column support.
//
// The MLFMA interpolation operator resamples a band-limited function on
// the unit circle from Q_child uniform samples to Q_parent samples using
// local Lagrange interpolation (Sec. IV-D: "interpolation and
// anterpolation operators ... are realized with band-diagonal matrices";
// "more accuracy yields a thicker band"). Because the sample grid is
// periodic in the angle, each row's support wraps around modulo the
// column count — hence the periodic band layout here.
//
// Storage: for each row r we keep `width` consecutive (mod cols) entries
// starting at column `first[r]`. apply() computes y = A x and
// apply_adjoint() computes y = A^H x (the anterpolation operator).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace ffw {

class PeriodicBandMatrix {
 public:
  PeriodicBandMatrix() = default;
  PeriodicBandMatrix(std::size_t rows, std::size_t cols, std::size_t width);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t width() const { return width_; }

  /// Set the support start column for row r.
  void set_first(std::size_t r, std::size_t col0) { first_[r] = static_cast<std::uint32_t>(col0); }
  std::size_t first(std::size_t r) const { return first_[r]; }

  /// Coefficient j (0 <= j < width) of row r, multiplying column
  /// (first[r] + j) mod cols.
  double& coeff(std::size_t r, std::size_t j) { return w_[r * width_ + j]; }
  double coeff(std::size_t r, std::size_t j) const { return w_[r * width_ + j]; }

  /// y = A x (x.size()==cols, y.size()==rows).
  void apply(ccspan x, cspan y) const;
  /// y = A^T x == A^H x (coefficients are real).
  void apply_adjoint(ccspan x, cspan y) const;

  /// Batched forms over column-major panels: X is (cols x n), Y is
  /// (rows x n), with leading dimensions ldx/ldy. The fp32 overloads
  /// stream the rounded stencil copy built by build_f32() — half the
  /// coefficient bytes per row, which is what makes the band-diagonal
  /// interp/anterp phases of the mixed engine cheaper, not just smaller.
  void apply_batch(const cplx* x, std::size_t ldx, cplx* y, std::size_t ldy,
                   std::size_t n) const;
  void apply_adjoint_batch(const cplx* x, std::size_t ldx, cplx* y,
                           std::size_t ldy, std::size_t n) const;
  void apply_batch(const cplx32* x, std::size_t ldx, cplx32* y,
                   std::size_t ldy, std::size_t n) const;
  void apply_adjoint_batch(const cplx32* x, std::size_t ldx, cplx32* y,
                           std::size_t ldy, std::size_t n) const;

  /// Round the fp64 stencil into an fp32 copy for the mixed engine.
  /// With `drop_f64` the double coefficients are released afterwards
  /// (halving the table footprint); the fp64 apply overloads and
  /// coeff()/to_dense() become invalid then.
  void build_f32(bool drop_f64 = false);
  bool has_f32() const { return !wf_.empty(); }

  /// Dense materialisation for testing.
  std::vector<std::vector<double>> to_dense() const;

  std::size_t bytes() const {
    return w_.size() * sizeof(double) + wf_.size() * sizeof(float) +
           first_.size() * sizeof(std::uint32_t);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t width_ = 0;
  std::vector<double> w_;
  std::vector<float> wf_;  // fp32 mirror of w_ (mixed engine)
  std::vector<std::uint32_t> first_;
};

}  // namespace ffw
