#include "linalg/gemm.hpp"

#include <algorithm>

namespace ffw {

namespace {
// Register-tile sizes for the micro-kernel: 4 rows x 2 columns of C held
// in scalars while streaming a column of A. Complex FMA keeps ~8 live
// registers, comfortably within x86-64's budget.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 2;
constexpr std::size_t kKc = 128;  // k blocking (A panel stays in L1/L2)
constexpr std::size_t kMb = 256;  // row blocking of the wide-n path (the
                                  // 4-column C tile stays in L1)

// Wide-n micro-kernel: C(:, 0..3) += A * (alpha * B(:, 0..3)) as k
// rank-1 updates. Each A column is streamed ONCE for four C columns and
// the row loop runs on the interleaved re/im doubles, which the
// vectoriser turns into plain mul/add lanes — something the scalar
// std::complex dot-product tiles above n=1..3 cannot express. This is
// where the blocked (multi-RHS) apply gets its per-RHS speedup.
inline void wide_tile4(std::size_t m, std::size_t k, cplx alpha,
                       const cplx* a, std::size_t lda, const cplx* b,
                       std::size_t ldb, cplx* c, std::size_t ldc) {
  const std::size_t m2 = 2 * m;
  double* c0 = reinterpret_cast<double*>(c + 0 * ldc);
  double* c1 = reinterpret_cast<double*>(c + 1 * ldc);
  double* c2 = reinterpret_cast<double*>(c + 2 * ldc);
  double* c3 = reinterpret_cast<double*>(c + 3 * ldc);
  for (std::size_t p = 0; p < k; ++p) {
    const double* ap = reinterpret_cast<const double*>(a + p * lda);
    const cplx b0 = alpha * b[0 * ldb + p], b1 = alpha * b[1 * ldb + p];
    const cplx b2 = alpha * b[2 * ldb + p], b3 = alpha * b[3 * ldb + p];
    const double b0r = b0.real(), b0i = b0.imag();
    const double b1r = b1.real(), b1i = b1.imag();
    const double b2r = b2.real(), b2i = b2.imag();
    const double b3r = b3.real(), b3i = b3.imag();
#ifdef _OPENMP
#pragma omp simd
#endif
    for (std::size_t i = 0; i < m2; i += 2) {
      const double ar = ap[i], ai = ap[i + 1];
      c0[i] += b0r * ar - b0i * ai;
      c0[i + 1] += b0r * ai + b0i * ar;
      c1[i] += b1r * ar - b1i * ai;
      c1[i + 1] += b1r * ai + b1i * ar;
      c2[i] += b2r * ar - b2i * ai;
      c2[i + 1] += b2r * ai + b2i * ar;
      c3[i] += b3r * ar - b3i * ai;
      c3[i + 1] += b3r * ai + b3i * ar;
    }
  }
}
}  // namespace

void gemm_raw(std::size_t m, std::size_t n, std::size_t k, cplx alpha,
              const cplx* a, std::size_t lda, const cplx* b, std::size_t ldb,
              cplx beta, cplx* c, std::size_t ldc) {
  // Scale C by beta once up front.
  if (beta == cplx{0.0}) {
    for (std::size_t j = 0; j < n; ++j)
      std::fill(c + j * ldc, c + j * ldc + m, cplx{});
  } else if (beta != cplx{1.0}) {
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < m; ++i) c[j * ldc + i] *= beta;
  }
  if (alpha == cplx{0.0} || m == 0 || n == 0 || k == 0) return;

  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t kb = std::min(kKc, k - k0);
    std::size_t jw = 0;
    for (; jw + 4 <= n; jw += 4) {  // wide-n path, 4-column tiles
      for (std::size_t i0 = 0; i0 < m; i0 += kMb) {
        const std::size_t mb = std::min(kMb, m - i0);
        wide_tile4(mb, kb, alpha, a + k0 * lda + i0, lda, b + jw * ldb + k0,
                   ldb, c + jw * ldc + i0, ldc);
      }
    }
    for (std::size_t j0 = jw; j0 + kNr <= n; j0 += kNr) {
      std::size_t i0 = 0;
      for (; i0 + kMr <= m; i0 += kMr) {
        cplx c00{}, c10{}, c20{}, c30{}, c01{}, c11{}, c21{}, c31{};
        const cplx* b0 = b + (j0 + 0) * ldb + k0;
        const cplx* b1 = b + (j0 + 1) * ldb + k0;
        for (std::size_t p = 0; p < kb; ++p) {
          const cplx* ac = a + (k0 + p) * lda + i0;
          const cplx bp0 = b0[p], bp1 = b1[p];
          c00 += ac[0] * bp0;
          c10 += ac[1] * bp0;
          c20 += ac[2] * bp0;
          c30 += ac[3] * bp0;
          c01 += ac[0] * bp1;
          c11 += ac[1] * bp1;
          c21 += ac[2] * bp1;
          c31 += ac[3] * bp1;
        }
        cplx* cc0 = c + (j0 + 0) * ldc + i0;
        cplx* cc1 = c + (j0 + 1) * ldc + i0;
        cc0[0] += alpha * c00;
        cc0[1] += alpha * c10;
        cc0[2] += alpha * c20;
        cc0[3] += alpha * c30;
        cc1[0] += alpha * c01;
        cc1[1] += alpha * c11;
        cc1[2] += alpha * c21;
        cc1[3] += alpha * c31;
      }
      for (; i0 < m; ++i0) {  // row remainder
        cplx c0{}, c1{};
        const cplx* b0 = b + (j0 + 0) * ldb + k0;
        const cplx* b1 = b + (j0 + 1) * ldb + k0;
        for (std::size_t p = 0; p < kb; ++p) {
          const cplx av = a[(k0 + p) * lda + i0];
          c0 += av * b0[p];
          c1 += av * b1[p];
        }
        c[(j0 + 0) * ldc + i0] += alpha * c0;
        c[(j0 + 1) * ldc + i0] += alpha * c1;
      }
    }
    if (n % kNr) {  // column remainder
      const std::size_t j = n - 1;
      for (std::size_t i0 = 0; i0 < m; ++i0) {
        cplx acc{};
        const cplx* bj = b + j * ldb + k0;
        for (std::size_t p = 0; p < kb; ++p)
          acc += a[(k0 + p) * lda + i0] * bj[p];
        c[j * ldc + i0] += alpha * acc;
      }
    }
  }
}

void gemm_herm_raw(std::size_t m, std::size_t n, std::size_t k, cplx alpha,
                   const cplx* a, std::size_t lda, const cplx* b,
                   std::size_t ldb, cplx beta, cplx* c, std::size_t ldc) {
  // A is stored (k x m); column i of the logical A^H is the conjugated
  // i-th column of A read contiguously, so the dot-product form is
  // already stride-1 friendly.
  for (std::size_t j = 0; j < n; ++j) {
    const cplx* bj = b + j * ldb;
    cplx* cj = c + j * ldc;
    for (std::size_t i = 0; i < m; ++i) {
      const cplx* ai = a + i * lda;
      cplx acc{};
      for (std::size_t p = 0; p < k; ++p) acc += std::conj(ai[p]) * bj[p];
      cj[i] = (beta == cplx{0.0} ? cplx{} : beta * cj[i]) + alpha * acc;
    }
  }
}

void gemm(cplx alpha, const CMatrix& a, const CMatrix& b, cplx beta,
          CMatrix& c) {
  FFW_CHECK(a.cols() == b.rows());
  FFW_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  gemm_raw(a.rows(), b.cols(), a.cols(), alpha, a.data(), a.rows(), b.data(),
           b.rows(), beta, c.data(), c.rows());
}

void gemm_herm_a(cplx alpha, const CMatrix& a, const CMatrix& b, cplx beta,
                 CMatrix& c) {
  FFW_CHECK(a.rows() == b.rows());
  FFW_CHECK(c.rows() == a.cols() && c.cols() == b.cols());
  gemm_herm_raw(a.cols(), b.cols(), a.rows(), alpha, a.data(), a.rows(),
                b.data(), b.rows(), beta, c.data(), c.rows());
}

}  // namespace ffw
