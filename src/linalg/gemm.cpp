#include "linalg/gemm.hpp"

#include <algorithm>
#include <vector>

namespace ffw {

namespace {
// Register-tile sizes for the micro-kernel: 4 rows x 2 columns of C held
// in scalars while streaming a column of A. Complex FMA keeps ~8 live
// registers, comfortably within x86-64's budget.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 2;
constexpr std::size_t kKc = 128;  // k blocking (A panel stays in L1/L2)
constexpr std::size_t kMb = 256;  // row blocking of the wide-n path (the
                                  // 4-column C tile stays in L1)

// Wide-n micro-kernel: C(:, 0..3) += A * (alpha * B(:, 0..3)) as k
// rank-1 updates. Each A column is streamed ONCE for four C columns and
// the row loop runs on the interleaved re/im components, which the
// vectoriser turns into plain mul/add lanes — something the scalar
// std::complex dot-product tiles above n=1..3 cannot express. A streams
// as TS (fp32 loads convert in-register on the mixed path) and C
// accumulates as TD, so narrowing never happens inside the update.
template <typename TS, typename TD>
inline void wide_tile4(std::size_t m, std::size_t k, std::complex<TD> alpha,
                       const std::complex<TS>* a, std::size_t lda,
                       const std::complex<TS>* b, std::size_t ldb,
                       std::complex<TD>* c, std::size_t ldc) {
  const std::size_t m2 = 2 * m;
  TD* c0 = reinterpret_cast<TD*>(c + 0 * ldc);
  TD* c1 = reinterpret_cast<TD*>(c + 1 * ldc);
  TD* c2 = reinterpret_cast<TD*>(c + 2 * ldc);
  TD* c3 = reinterpret_cast<TD*>(c + 3 * ldc);
  for (std::size_t p = 0; p < k; ++p) {
    const TS* ap = reinterpret_cast<const TS*>(a + p * lda);
    const std::complex<TD> b0 = alpha * std::complex<TD>(b[0 * ldb + p]);
    const std::complex<TD> b1 = alpha * std::complex<TD>(b[1 * ldb + p]);
    const std::complex<TD> b2 = alpha * std::complex<TD>(b[2 * ldb + p]);
    const std::complex<TD> b3 = alpha * std::complex<TD>(b[3 * ldb + p]);
    const TD b0r = b0.real(), b0i = b0.imag();
    const TD b1r = b1.real(), b1i = b1.imag();
    const TD b2r = b2.real(), b2i = b2.imag();
    const TD b3r = b3.real(), b3i = b3.imag();
#ifdef _OPENMP
#pragma omp simd
#endif
    for (std::size_t i = 0; i < m2; i += 2) {
      const TD ar = static_cast<TD>(ap[i]), ai = static_cast<TD>(ap[i + 1]);
      c0[i] += b0r * ar - b0i * ai;
      c0[i + 1] += b0r * ai + b0i * ar;
      c1[i] += b1r * ar - b1i * ai;
      c1[i + 1] += b1r * ai + b1i * ar;
      c2[i] += b2r * ar - b2i * ai;
      c2[i + 1] += b2r * ai + b2i * ar;
      c3[i] += b3r * ar - b3i * ai;
      c3[i + 1] += b3r * ai + b3i * ar;
    }
  }
}
}  // namespace

template <typename TS, typename TD>
void gemm_raw_t(std::size_t m, std::size_t n, std::size_t k,
                std::complex<TD> alpha, const std::complex<TS>* a,
                std::size_t lda, const std::complex<TS>* b, std::size_t ldb,
                std::complex<TD> beta, std::complex<TD>* c, std::size_t ldc) {
  using CD = std::complex<TD>;
  // Scale C by beta once up front.
  if (beta == CD{}) {
    for (std::size_t j = 0; j < n; ++j)
      std::fill(c + j * ldc, c + j * ldc + m, CD{});
  } else if (beta != CD{TD(1)}) {
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < m; ++i) c[j * ldc + i] *= beta;
  }
  if (alpha == CD{} || m == 0 || n == 0 || k == 0) return;

  for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
    const std::size_t kb = std::min(kKc, k - k0);
    std::size_t jw = 0;
    for (; jw + 4 <= n; jw += 4) {  // wide-n path, 4-column tiles
      for (std::size_t i0 = 0; i0 < m; i0 += kMb) {
        const std::size_t mb = std::min(kMb, m - i0);
        wide_tile4(mb, kb, alpha, a + k0 * lda + i0, lda, b + jw * ldb + k0,
                   ldb, c + jw * ldc + i0, ldc);
      }
    }
    for (std::size_t j0 = jw; j0 + kNr <= n; j0 += kNr) {
      std::size_t i0 = 0;
      for (; i0 + kMr <= m; i0 += kMr) {
        CD c00{}, c10{}, c20{}, c30{}, c01{}, c11{}, c21{}, c31{};
        const std::complex<TS>* b0 = b + (j0 + 0) * ldb + k0;
        const std::complex<TS>* b1 = b + (j0 + 1) * ldb + k0;
        for (std::size_t p = 0; p < kb; ++p) {
          const std::complex<TS>* ac = a + (k0 + p) * lda + i0;
          const CD bp0{b0[p]}, bp1{b1[p]};
          c00 += CD{ac[0]} * bp0;
          c10 += CD{ac[1]} * bp0;
          c20 += CD{ac[2]} * bp0;
          c30 += CD{ac[3]} * bp0;
          c01 += CD{ac[0]} * bp1;
          c11 += CD{ac[1]} * bp1;
          c21 += CD{ac[2]} * bp1;
          c31 += CD{ac[3]} * bp1;
        }
        CD* cc0 = c + (j0 + 0) * ldc + i0;
        CD* cc1 = c + (j0 + 1) * ldc + i0;
        cc0[0] += alpha * c00;
        cc0[1] += alpha * c10;
        cc0[2] += alpha * c20;
        cc0[3] += alpha * c30;
        cc1[0] += alpha * c01;
        cc1[1] += alpha * c11;
        cc1[2] += alpha * c21;
        cc1[3] += alpha * c31;
      }
      for (; i0 < m; ++i0) {  // row remainder
        CD c0{}, c1{};
        const std::complex<TS>* b0 = b + (j0 + 0) * ldb + k0;
        const std::complex<TS>* b1 = b + (j0 + 1) * ldb + k0;
        for (std::size_t p = 0; p < kb; ++p) {
          const CD av{a[(k0 + p) * lda + i0]};
          c0 += av * CD{b0[p]};
          c1 += av * CD{b1[p]};
        }
        c[(j0 + 0) * ldc + i0] += alpha * c0;
        c[(j0 + 1) * ldc + i0] += alpha * c1;
      }
    }
    if (n % kNr) {  // column remainder
      const std::size_t j = n - 1;
      for (std::size_t i0 = 0; i0 < m; ++i0) {
        CD acc{};
        const std::complex<TS>* bj = b + j * ldb + k0;
        for (std::size_t p = 0; p < kb; ++p)
          acc += CD{a[(k0 + p) * lda + i0]} * CD{bj[p]};
        c[j * ldc + i0] += alpha * acc;
      }
    }
  }
}

template void gemm_raw_t<double, double>(
    std::size_t, std::size_t, std::size_t, cplx, const cplx*, std::size_t,
    const cplx*, std::size_t, cplx, cplx*, std::size_t);
template void gemm_raw_t<float, float>(
    std::size_t, std::size_t, std::size_t, cplx32, const cplx32*, std::size_t,
    const cplx32*, std::size_t, cplx32, cplx32*, std::size_t);
template void gemm_raw_t<float, double>(
    std::size_t, std::size_t, std::size_t, cplx, const cplx32*, std::size_t,
    const cplx32*, std::size_t, cplx, cplx*, std::size_t);

void gemm_expand_mixed(std::size_t m, std::size_t n, std::size_t k,
                       const cplx32* a, std::size_t lda, const cplx32* b,
                       std::size_t ldb, cplx32* c, std::size_t ldc) {
  // fp32 chain length before each promotion into the fp64 tile. Short
  // enough that the fp32 rounding chain stays well under the mixed
  // engine's error budget, long enough to amortise the widen-adds.
  constexpr std::size_t kChunk = 4;
  const std::size_t m2 = 2 * m;
  static thread_local std::vector<double> acc64;
  static thread_local std::vector<float> acc32;
  if (acc64.size() < m2 * 4) acc64.resize(m2 * 4);
  if (acc32.size() < m2 * 4) acc32.resize(m2 * 4);
  std::size_t j0 = 0;
  for (; j0 + 4 <= n; j0 += 4) {  // 4-column tiles, A streamed once each p
    std::fill(acc64.begin(), acc64.begin() + static_cast<std::ptrdiff_t>(m2 * 4), 0.0);
    for (std::size_t k0 = 0; k0 < k; k0 += kChunk) {
      const std::size_t kb = std::min(kChunk, k - k0);
      std::fill(acc32.begin(), acc32.begin() + static_cast<std::ptrdiff_t>(m2 * 4), 0.0f);
      float* c0 = acc32.data();
      float* c1 = acc32.data() + m2;
      float* c2 = acc32.data() + 2 * m2;
      float* c3 = acc32.data() + 3 * m2;
      for (std::size_t p = 0; p < kb; ++p) {
        const float* ap = reinterpret_cast<const float*>(a + (k0 + p) * lda);
        const cplx32 b0 = b[(j0 + 0) * ldb + k0 + p];
        const cplx32 b1 = b[(j0 + 1) * ldb + k0 + p];
        const cplx32 b2 = b[(j0 + 2) * ldb + k0 + p];
        const cplx32 b3 = b[(j0 + 3) * ldb + k0 + p];
        const float b0r = b0.real(), b0i = b0.imag();
        const float b1r = b1.real(), b1i = b1.imag();
        const float b2r = b2.real(), b2i = b2.imag();
        const float b3r = b3.real(), b3i = b3.imag();
#ifdef _OPENMP
#pragma omp simd
#endif
        for (std::size_t i = 0; i < m2; i += 2) {
          const float ar = ap[i], ai = ap[i + 1];
          c0[i] += b0r * ar - b0i * ai;
          c0[i + 1] += b0r * ai + b0i * ar;
          c1[i] += b1r * ar - b1i * ai;
          c1[i + 1] += b1r * ai + b1i * ar;
          c2[i] += b2r * ar - b2i * ai;
          c2[i + 1] += b2r * ai + b2i * ar;
          c3[i] += b3r * ar - b3i * ai;
          c3[i + 1] += b3r * ai + b3i * ar;
        }
      }
      for (std::size_t i = 0; i < m2 * 4; ++i)
        acc64[i] += static_cast<double>(acc32[i]);
    }
    for (std::size_t t = 0; t < 4; ++t) {
      float* cc = reinterpret_cast<float*>(c + (j0 + t) * ldc);
      const double* at = acc64.data() + t * m2;
      for (std::size_t i = 0; i < m2; ++i) cc[i] = static_cast<float>(at[i]);
    }
  }
  for (; j0 < n; ++j0) {  // column remainder: fp64-accumulated dots
    for (std::size_t i = 0; i < m; ++i) {
      cplx acc{};
      for (std::size_t p = 0; p < k; ++p)
        acc += cplx{a[p * lda + i]} * cplx{b[j0 * ldb + p]};
      c[j0 * ldc + i] = cplx32{static_cast<float>(acc.real()),
                               static_cast<float>(acc.imag())};
    }
  }
}

void gemm_herm_raw(std::size_t m, std::size_t n, std::size_t k, cplx alpha,
                   const cplx* a, std::size_t lda, const cplx* b,
                   std::size_t ldb, cplx beta, cplx* c, std::size_t ldc) {
  // A is stored (k x m); column i of the logical A^H is the conjugated
  // i-th column of A read contiguously, so the dot-product form is
  // already stride-1 friendly.
  for (std::size_t j = 0; j < n; ++j) {
    const cplx* bj = b + j * ldb;
    cplx* cj = c + j * ldc;
    for (std::size_t i = 0; i < m; ++i) {
      const cplx* ai = a + i * lda;
      cplx acc{};
      for (std::size_t p = 0; p < k; ++p) acc += std::conj(ai[p]) * bj[p];
      cj[i] = (beta == cplx{0.0} ? cplx{} : beta * cj[i]) + alpha * acc;
    }
  }
}

void gemm(cplx alpha, const CMatrix& a, const CMatrix& b, cplx beta,
          CMatrix& c) {
  FFW_CHECK(a.cols() == b.rows());
  FFW_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  gemm_raw(a.rows(), b.cols(), a.cols(), alpha, a.data(), a.rows(), b.data(),
           b.rows(), beta, c.data(), c.rows());
}

void gemm_herm_a(cplx alpha, const CMatrix& a, const CMatrix& b, cplx beta,
                 CMatrix& c) {
  FFW_CHECK(a.rows() == b.rows());
  FFW_CHECK(c.rows() == a.cols() && c.cols() == b.cols());
  gemm_herm_raw(a.cols(), b.cols(), a.rows(), alpha, a.data(), a.rows(),
                b.data(), b.rows(), beta, c.data(), c.rows());
}

}  // namespace ffw
