#include "linalg/cmatrix.hpp"

#include <cmath>

namespace ffw {

CMatrix CMatrix::hermitian() const {
  CMatrix out(cols_, rows_);
  for (std::size_t c = 0; c < cols_; ++c)
    for (std::size_t r = 0; r < rows_; ++r) out(c, r) = std::conj((*this)(r, c));
  return out;
}

CMatrix CMatrix::transpose() const {
  CMatrix out(cols_, rows_);
  for (std::size_t c = 0; c < cols_; ++c)
    for (std::size_t r = 0; r < rows_; ++r) out(c, r) = (*this)(r, c);
  return out;
}

double CMatrix::fro_norm() const {
  double s = 0.0;
  for (const cplx& v : data_) s += std::norm(v);
  return std::sqrt(s);
}

void matvec(const CMatrix& a, ccspan x, cspan y) {
  std::fill(y.begin(), y.end(), cplx{});
  matvec_acc(a, x, y);
}

void matvec_acc(const CMatrix& a, ccspan x, cspan y) {
  FFW_CHECK(x.size() == a.cols() && y.size() == a.rows());
  const std::size_t m = a.rows();
  const cplx* ap = a.data();
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const cplx xc = x[c];
    const cplx* acol = ap + c * m;
    for (std::size_t r = 0; r < m; ++r) y[r] += acol[r] * xc;
  }
}

void matvec_herm(const CMatrix& a, ccspan x, cspan y) {
  FFW_CHECK(x.size() == a.rows() && y.size() == a.cols());
  const std::size_t m = a.rows();
  const cplx* ap = a.data();
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const cplx* acol = ap + c * m;
    cplx acc{};
    for (std::size_t r = 0; r < m; ++r) acc += std::conj(acol[r]) * x[r];
    y[c] = acc;
  }
}

}  // namespace ffw
