// Lightweight runtime checks. FFW_CHECK is always on (cheap, guards
// API misuse with a clear message); FFW_DCHECK compiles out in release
// builds and is used inside hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ffw::detail {
[[noreturn]] inline void check_fail(const char* cond, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "FFW_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace ffw::detail

#define FFW_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) ::ffw::detail::check_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define FFW_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::ffw::detail::check_fail(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define FFW_DCHECK(cond) ((void)0)
#else
#define FFW_DCHECK(cond) FFW_CHECK(cond)
#endif
