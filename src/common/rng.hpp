// Deterministic, seedable PRNG used for reproducible test vectors,
// phantom noise, and randomised property tests. splitmix64 seeding into
// xoshiro256**, both public-domain algorithms re-implemented here.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ffw {

/// Derives an independent stream seed from a base seed and a salt
/// (splitmix64 finaliser over their combination). Used wherever one
/// user-facing seed must fan out into decorrelated sub-streams — e.g.
/// per-stage measurement noise in the multi-frequency ladder, where
/// reusing the base seed verbatim would correlate the "independent
/// experiments at each operating frequency".
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Complex with independent standard-normal real/imag parts.
  cplx cnormal();

  /// Fill a vector with cnormal() samples.
  void fill_cnormal(cspan out);

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ffw
