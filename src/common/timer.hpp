// Wall-clock timing helpers used by the benchmark harness and the
// per-operator time census that feeds the performance model.
#pragma once

#include <chrono>

namespace ffw {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time over multiple start/stop windows (e.g. total time in
/// the translation phase across a whole DBIM run).
class Stopwatch {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += t_.seconds();
    running_ = false;
  }
  double total() const { return total_; }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace ffw
