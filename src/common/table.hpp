// Console table formatting for the benchmark binaries, which print the
// same rows/columns as the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace ffw {

/// Column-aligned ASCII table. Rows may have differing cell counts; the
/// table pads with empty cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule, e.g.
  ///   Name      | CPU    | GPU
  ///   ----------+--------+------
  ///   Aggregate | 1.00x  | 5.92x
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers used by bench tables.
std::string fmt_fixed(double v, int digits);
std::string fmt_sci(double v, int digits);
std::string fmt_speedup(double v);

}  // namespace ffw
