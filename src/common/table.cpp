#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ffw {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::size_t ncol = header_.size();
  for (const auto& r : rows_) ncol = std::max(ncol, r.size());

  std::vector<std::size_t> width(ncol, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < ncol; ++c) {
      const std::string cell = c < r.size() ? r[c] : std::string{};
      out << cell << std::string(width[c] - cell.size(), ' ');
      out << (c + 1 < ncol ? " | " : "\n");
    }
  };
  emit(header_);
  for (std::size_t c = 0; c < ncol; ++c) {
    out << std::string(width[c], '-') << (c + 1 < ncol ? "-+-" : "\n");
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, v);
  return buf;
}

std::string fmt_speedup(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx", v);
  return buf;
}

}  // namespace ffw
