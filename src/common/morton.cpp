#include "common/morton.hpp"

namespace ffw {

std::uint32_t morton_spread(std::uint32_t x) {
  x &= 0x0000FFFFu;
  x = (x | (x << 8)) & 0x00FF00FFu;
  x = (x | (x << 4)) & 0x0F0F0F0Fu;
  x = (x | (x << 2)) & 0x33333333u;
  x = (x | (x << 1)) & 0x55555555u;
  return x;
}

std::uint32_t morton_compact(std::uint32_t v) {
  v &= 0x55555555u;
  v = (v | (v >> 1)) & 0x33333333u;
  v = (v | (v >> 2)) & 0x0F0F0F0Fu;
  v = (v | (v >> 4)) & 0x00FF00FFu;
  v = (v | (v >> 8)) & 0x0000FFFFu;
  return v;
}

std::uint32_t morton_encode(std::uint32_t ix, std::uint32_t iy) {
  return morton_spread(ix) | (morton_spread(iy) << 1);
}

void morton_decode(std::uint32_t code, std::uint32_t& ix, std::uint32_t& iy) {
  ix = morton_compact(code);
  iy = morton_compact(code >> 1);
}

}  // namespace ffw
