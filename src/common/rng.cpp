#include "common/rng.hpp"

#include <cmath>

namespace ffw {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}
}  // namespace

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  // Two finaliser rounds over seed advanced by a salt-dependent stride:
  // adjacent salts land in unrelated splitmix64 streams.
  std::uint64_t x = seed ^ (salt * 0xD1342543DE82EF95ull);
  (void)splitmix64(x);
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  spare_ = r * std::sin(2.0 * pi * u2);
  have_spare_ = true;
  return r * std::cos(2.0 * pi * u2);
}

cplx Rng::cnormal() { return {normal(), normal()}; }

void Rng::fill_cnormal(cspan out) {
  for (auto& v : out) v = cnormal();
}

}  // namespace ffw
