// Morton (Z-order) index helpers for the MLFMA quad-tree.
//
// The paper (Sec. IV-A) uses Morton indexing so that spatially close
// clusters are close in memory and so that the 16 sub-trees used for the
// second parallelisation dimension are contiguous index ranges: a cluster
// and all of its descendants share a Morton-prefix, so partitioning the
// leaf Morton range into 16 equal chunks puts every parent/child pair on
// the same node.
#pragma once

#include <cstdint>

namespace ffw {

/// Interleave the low 16 bits of `x` into even bit positions.
std::uint32_t morton_spread(std::uint32_t x);

/// Compact even bit positions of `v` into the low 16 bits.
std::uint32_t morton_compact(std::uint32_t v);

/// Morton-encode a 2-D cluster coordinate (ix column, iy row), each < 2^16.
/// Bit layout: x occupies even bits, y odd bits.
std::uint32_t morton_encode(std::uint32_t ix, std::uint32_t iy);

/// Inverse of morton_encode.
void morton_decode(std::uint32_t code, std::uint32_t& ix, std::uint32_t& iy);

}  // namespace ffw
