// Core scalar and container typedefs shared across the library.
//
// The whole solver works in double-precision complex arithmetic, matching
// the paper's setup (Sec. V-B: "All computations use double-precision").
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

namespace ffw {

using cplx = std::complex<double>;
using cvec = std::vector<cplx>;
using rvec = std::vector<double>;

using cspan = std::span<cplx>;
using ccspan = std::span<const cplx>;
using rspan = std::span<double>;
using crspan = std::span<const double>;

inline constexpr double pi = std::numbers::pi;
inline constexpr cplx iu{0.0, 1.0};  // imaginary unit

/// 2-D point / vector in physical coordinates (metres, or wavelengths
/// when the caller normalises; the library is unit-agnostic and only the
/// product k*r matters).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(double s, Vec2 a) { return {s * a.x, s * a.y}; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }
};

inline double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }
inline double norm(Vec2 a) { return std::sqrt(dot(a, a)); }
inline double angle_of(Vec2 a) { return std::atan2(a.y, a.x); }

}  // namespace ffw
