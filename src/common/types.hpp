// Core scalar and container typedefs shared across the library.
//
// The solver's reference arithmetic is double-precision complex, matching
// the paper's setup (Sec. V-B: "All computations use double-precision").
// The mixed-precision MLFMA path (DESIGN.md Sec. 10) additionally streams
// its precomputed operator tables, per-level spectra panels and halo
// messages as single-precision complex — the `32`-suffixed aliases below —
// while every Krylov recurrence and reduction stays in double.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

namespace ffw {

using cplx = std::complex<double>;
using cvec = std::vector<cplx>;
using rvec = std::vector<double>;

using cspan = std::span<cplx>;
using ccspan = std::span<const cplx>;
using rspan = std::span<double>;
using crspan = std::span<const double>;

// Single-precision complex: the storage/wire scalar of the mixed MLFMA.
using cplx32 = std::complex<float>;
using cvec32 = std::vector<cplx32>;
using cspan32 = std::span<cplx32>;
using ccspan32 = std::span<const cplx32>;

/// Arithmetic precision policy of an operator pipeline. `kDouble` is the
/// paper's all-fp64 setup; `kMixed` stores the Table I operator tables,
/// the per-level spectra panels and the partitioned halo messages in
/// fp32 (half the streamed bytes and wire traffic) while accumulating
/// into fp64 at the leaf-expansion / local-expansion / near-field GEMM
/// boundaries.
enum class Precision { kDouble, kMixed };

/// Round a double-complex value to storage precision T (identity for
/// T = double). The narrowing is the *only* place the mixed pipeline
/// loses digits relative to fp64 tables.
template <typename T>
inline std::complex<T> to_scalar(cplx v) {
  return {static_cast<T>(v.real()), static_cast<T>(v.imag())};
}

inline cplx32 narrow(cplx v) { return to_scalar<float>(v); }
inline cplx widen(cplx32 v) { return {v.real(), v.imag()}; }

inline constexpr double pi = std::numbers::pi;
inline constexpr cplx iu{0.0, 1.0};  // imaginary unit

/// 2-D point / vector in physical coordinates (metres, or wavelengths
/// when the caller normalises; the library is unit-agnostic and only the
/// product k*r matters).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(double s, Vec2 a) { return {s * a.x, s * a.y}; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }
};

inline double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }
inline double norm(Vec2 a) { return std::sqrt(dot(a, a)); }
inline double angle_of(Vec2 a) { return std::atan2(a.y, a.x); }

}  // namespace ffw
