// Transmitter / receiver operators (paper Fig. 3, Sec. VI-A).
//
// Transmitters are Dirac line sources on a ring (or arc) around the
// imaging domain; receivers likewise. The paper models both with delta
// functions:
//   phi_inc_n        = sum_t (i/4) H0(k|r_n - r_t|) q_t          (G_T q)
//   phi_sca_r        = sum_n sf * (i/4) H0(k|r_r - r_n|) O_n phi_n  (G_R O phi)
// where sf is the Richmond source-disk factor (the receiver sees the
// *radiated* field of each contrast pixel, integrated over the pixel).
//
// G_R is materialised as a dense R x N matrix when it fits the
// configurable budget (it is reused ~3T times per DBIM iteration),
// otherwise applied matrix-free.
#pragma once

#include <optional>
#include <vector>

#include "grid/grid.hpp"
#include "linalg/cmatrix.hpp"

namespace ffw {

/// Positions of `count` elements on a circular arc of given radius
/// centred on the domain origin, angles in [angle_begin, angle_end)
/// (radians; full ring by default, uniformly spaced).
std::vector<Vec2> ring_positions(int count, double radius,
                                 double angle_begin = 0.0,
                                 double angle_end = 2.0 * pi);

class Transceivers {
 public:
  /// `materialize_budget` — max number of complex entries the dense G_R
  /// cache may occupy (default 16M entries = 256 MB).
  Transceivers(const Grid& grid, std::vector<Vec2> transmitters,
               std::vector<Vec2> receivers,
               std::size_t materialize_budget = std::size_t{16} << 20);

  int num_transmitters() const { return static_cast<int>(tx_.size()); }
  int num_receivers() const { return static_cast<int>(rx_.size()); }
  const std::vector<Vec2>& transmitters() const { return tx_; }
  const std::vector<Vec2>& receivers() const { return rx_; }

  /// Incident field of transmitter t on all pixels (natural order),
  /// unit source amplitude.
  cvec incident_field(int t) const;

  /// y = G_R x (x: pixel vector, natural order; y: length R).
  void apply_gr(ccspan x, cspan y) const;

  /// y = G_R^H x (x: length R; y: pixel vector, natural order).
  void apply_gr_herm(ccspan x, cspan y) const;

  bool gr_materialized() const { return gr_.has_value(); }

  /// Partial G_R products over a pixel subset (used by the distributed
  /// DBIM driver, where each tree rank owns a slice of the image):
  /// y += sum_i G_R[:, pixels[i]] * x_sub[i]. Caller zero-fills and
  /// allreduces y over the tree group.
  void apply_gr_subset(ccspan x_sub, std::span<const std::uint32_t> pixels,
                       cspan y_accum) const;

  /// y_sub[i] = (G_R^H u)[pixels[i]].
  void apply_gr_herm_subset(ccspan u, std::span<const std::uint32_t> pixels,
                            cspan y_sub) const;

  /// Incident field of transmitter t restricted to a pixel subset.
  void incident_field_subset(int t, std::span<const std::uint32_t> pixels,
                             cspan out) const;

 private:
  cplx gr_entry(int r, std::size_t pixel) const;

  const Grid* grid_;
  std::vector<Vec2> tx_, rx_;
  std::optional<CMatrix> gr_;  // R x N cache
};

}  // namespace ffw
