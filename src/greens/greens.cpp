#include "greens/greens.hpp"

#include <cmath>

#include "common/check.hpp"
#include "special/bessel.hpp"

namespace ffw {

cplx g0_point(double k, double r) {
  FFW_DCHECK(r > 0.0);
  const double x = k * r;
  return 0.25 * iu * cplx{bessel_j0(x), bessel_y0(x)};
}

double source_factor(const Grid& grid) {
  const double k = grid.k0();
  const double a = grid.disk_radius();
  return (2.0 * pi * a / k) * bessel_j1(k * a);
}

cplx self_term(const Grid& grid) {
  const double k = grid.k0();
  const double a = grid.disk_radius();
  const cplx h1 = {bessel_j1(k * a), bessel_y1(k * a)};
  return iu * pi * a / (2.0 * k) * h1 - 1.0 / (k * k);
}

cplx g0_pixel(const Grid& grid, Vec2 rm, Vec2 rn) {
  const double r = norm(rm - rn);
  if (r < 0.5 * grid.h()) return self_term(grid);
  return source_factor(grid) * g0_point(grid.k0(), r);
}

cvec dense_g0_apply_rows(const Grid& grid, ccspan x,
                         std::span<const std::uint32_t> rows) {
  const int nx = grid.nx();
  const std::size_t n = grid.num_pixels();
  FFW_CHECK(x.size() == n);
  const double sf = source_factor(grid);
  const cplx self = self_term(grid);
  const double k = grid.k0();
  cvec out(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::uint32_t row = rows[i];
    const Vec2 rm = grid.pixel_center(static_cast<int>(row) % nx,
                                      static_cast<int>(row) / nx);
    cplx acc{};
    for (int iy = 0; iy < nx; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const std::size_t col = grid.pixel_index(ix, iy);
        if (col == row) {
          acc += self * x[col];
        } else {
          acc += sf * g0_point(k, norm(rm - grid.pixel_center(ix, iy))) *
                 x[col];
        }
      }
    }
    out[i] = acc;
  }
  return out;
}

cvec dense_g0_apply(const Grid& grid, ccspan x) {
  std::vector<std::uint32_t> rows(grid.num_pixels());
  for (std::size_t i = 0; i < rows.size(); ++i)
    rows[i] = static_cast<std::uint32_t>(i);
  return dense_g0_apply_rows(grid, x, rows);
}

CMatrix build_dense_g0(const Grid& grid) {
  const int nx = grid.nx();
  const std::size_t n = grid.num_pixels();
  CMatrix g(n, n);
  const double sf = source_factor(grid);
  const cplx self = self_term(grid);
  const double k = grid.k0();
  for (int ny_ = 0; ny_ < nx; ++ny_) {
    for (int nxx = 0; nxx < nx; ++nxx) {
      const std::size_t col = grid.pixel_index(nxx, ny_);
      const Vec2 rn = grid.pixel_center(nxx, ny_);
      for (int my = 0; my < nx; ++my) {
        for (int mx = 0; mx < nx; ++mx) {
          const std::size_t row = grid.pixel_index(mx, my);
          if (row == col) {
            g(row, col) = self;
          } else {
            const Vec2 rm = grid.pixel_center(mx, my);
            g(row, col) = sf * g0_point(k, norm(rm - rn));
          }
        }
      }
    }
  }
  return g;
}

}  // namespace ffw
