#include "greens/fast_receivers.hpp"

#include "greens/greens.hpp"
#include "mlfma/operators.hpp"

namespace ffw {

FastReceiverOperator::FastReceiverOperator(MlfmaEngine& engine,
                                           const std::vector<Vec2>& receivers)
    : engine_(&engine), receivers_(receivers) {
  const QuadTree& tree = engine.tree();
  FFW_CHECK_MSG(tree.num_levels() > 0,
                "fast receivers need at least one far-field level");
  top_level_ = tree.num_levels() - 1;
  const TreeLevel& top = tree.level(top_level_);
  num_top_ = top.num_clusters;
  const LevelPlan& plan = engine.plan().level(top_level_);
  q_top_ = static_cast<std::size_t>(plan.samples);
  const double k = tree.grid().k0();
  prefactor_ = 0.25 * iu * source_factor(tree.grid()) /
               static_cast<double>(q_top_);

  // Far-zone check: every receiver at least 1.5 cluster widths from
  // every top cluster centre (the addition theorem needs
  // |X| > |v| ~ 0.71 w; 1.5 w leaves the excess-bandwidth margin).
  trans_.resize(receivers_.size() * num_top_ * q_top_);
  for (std::size_t r = 0; r < receivers_.size(); ++r) {
    for (std::size_t c = 0; c < num_top_; ++c) {
      const Vec2 x = tree.cluster_center(top_level_, c) - receivers_[r];
      FFW_CHECK_MSG(norm(x) > 1.5 * top.width,
                    "receiver too close to the imaging domain for the "
                    "fast evaluation; use the dense G_R path");
      // X = c_src - c_dest with the receiver as a zero-size destination
      // cluster (see mlfma/operators.hpp for the sign convention).
      const cvec t = make_translation_diag(k, x, plan.truncation,
                                           static_cast<int>(q_top_));
      std::copy(t.begin(), t.end(),
                trans_.begin() +
                    static_cast<std::ptrdiff_t>((r * num_top_ + c) * q_top_));
    }
  }
}

std::size_t FastReceiverOperator::bytes() const {
  return trans_.size() * sizeof(cplx);
}

void FastReceiverOperator::apply(ccspan x_cluster, cspan y) {
  FFW_CHECK(y.size() == receivers_.size());
  const ccspan s_top = engine_->upward_only(x_cluster);
  FFW_CHECK(s_top.size() == num_top_ * q_top_);
  for (std::size_t r = 0; r < receivers_.size(); ++r) {
    cplx acc{};
    for (std::size_t c = 0; c < num_top_; ++c) {
      const cplx* t = trans_.data() + (r * num_top_ + c) * q_top_;
      const cplx* s = s_top.data() + c * q_top_;
      for (std::size_t q = 0; q < q_top_; ++q) acc += t[q] * s[q];
    }
    y[r] = prefactor_ * acc;
  }
}

}  // namespace ffw
