#include "greens/nearfield.hpp"

#include "greens/greens.hpp"
#include "linalg/gemm.hpp"

namespace ffw {

NearFieldOperators::NearFieldOperators(const QuadTree& tree) {
  const Grid& grid = tree.grid();
  const double w = tree.leaf_pixel_side() * grid.h();  // cluster width
  const int np = tree.pixels_per_leaf();
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      CMatrix m(np, np);
      const Vec2 shift{dx * w, dy * w};
      for (int q = 0; q < np; ++q) {  // source pixel in neighbour cluster
        const Vec2 rs = tree.local_pixel_offset(q) + shift;
        for (int p = 0; p < np; ++p) {  // destination pixel
          const Vec2 rd = tree.local_pixel_offset(p);
          m(static_cast<std::size_t>(p), static_cast<std::size_t>(q)) =
              g0_pixel(grid, rd, rs);
        }
      }
      mats_[static_cast<std::size_t>((dy + 1) * 3 + (dx + 1))] = std::move(m);
    }
  }
}

std::size_t NearFieldOperators::bytes() const {
  std::size_t s = 0;
  for (const auto& m : mats_) s += m.bytes();
  return s;
}

void NearFieldOperators::apply(const QuadTree& tree, ccspan x, cspan y) const {
  const std::size_t np = static_cast<std::size_t>(tree.pixels_per_leaf());
  const auto& begin = tree.near_begin();
  const auto& entries = tree.near();
  const std::size_t nleaf = tree.num_leaves();
  FFW_CHECK(x.size() == nleaf * np && y.size() == nleaf * np);
  for (std::size_t c = 0; c < nleaf; ++c) {
    cplx* yd = y.data() + c * np;
    for (std::uint32_t e = begin[c]; e < begin[c + 1]; ++e) {
      const NearEntry& ne = entries[e];
      const CMatrix& m = type(ne.near_type);
      const cplx* xs = x.data() + static_cast<std::size_t>(ne.src) * np;
      gemm_raw(np, 1, np, cplx{1.0}, m.data(), np, xs, np, cplx{1.0}, yd, np);
    }
  }
}

}  // namespace ffw
