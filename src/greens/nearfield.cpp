#include "greens/nearfield.hpp"

#include "greens/greens.hpp"
#include "linalg/gemm.hpp"

namespace ffw {

NearFieldOperators::NearFieldOperators(const QuadTree& tree,
                                       Precision precision)
    : precision_(precision) {
  const Grid& grid = tree.grid();
  const double w = tree.leaf_pixel_side() * grid.h();  // cluster width
  const int np = tree.pixels_per_leaf();
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      CMatrix m(np, np);
      const Vec2 shift{dx * w, dy * w};
      for (int q = 0; q < np; ++q) {  // source pixel in neighbour cluster
        const Vec2 rs = tree.local_pixel_offset(q) + shift;
        for (int p = 0; p < np; ++p) {  // destination pixel
          const Vec2 rd = tree.local_pixel_offset(p);
          m(static_cast<std::size_t>(p), static_cast<std::size_t>(q)) =
              g0_pixel(grid, rd, rs);
        }
      }
      mats_[static_cast<std::size_t>((dy + 1) * 3 + (dx + 1))] = std::move(m);
    }
  }

  if (precision_ == Precision::kMixed) {
    for (int t = 0; t < kNumTypes; ++t) {
      const CMatrix& m = mats_[static_cast<std::size_t>(t)];
      cvec32& m32 = mats32_[static_cast<std::size_t>(t)];
      m32.resize(m.rows() * m.cols());
      for (std::size_t i = 0; i < m32.size(); ++i) m32[i] = narrow(m.data()[i]);
      mats_[static_cast<std::size_t>(t)] = CMatrix{};
    }
  }
}

std::size_t NearFieldOperators::bytes() const {
  std::size_t s = 0;
  for (const auto& m : mats_) s += m.bytes();
  for (const auto& m : mats32_) s += m.size() * sizeof(cplx32);
  return s;
}

void NearFieldOperators::apply(const QuadTree& tree, ccspan x, cspan y) const {
  const std::size_t np = static_cast<std::size_t>(tree.pixels_per_leaf());
  const auto& begin = tree.near_begin();
  const auto& entries = tree.near();
  const std::size_t nleaf = tree.num_leaves();
  FFW_CHECK(precision_ == Precision::kDouble);
  FFW_CHECK(x.size() == nleaf * np && y.size() == nleaf * np);
  for (std::size_t c = 0; c < nleaf; ++c) {
    cplx* yd = y.data() + c * np;
    for (std::uint32_t e = begin[c]; e < begin[c + 1]; ++e) {
      const NearEntry& ne = entries[e];
      const CMatrix& m = type(ne.near_type);
      const cplx* xs = x.data() + static_cast<std::size_t>(ne.src) * np;
      gemm_raw(np, 1, np, cplx{1.0}, m.data(), np, xs, np, cplx{1.0}, yd, np);
    }
  }
}

}  // namespace ffw
