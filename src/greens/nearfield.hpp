// Near-field leaf operators (paper Sec. IV-D, Table I row 1).
//
// The near-field part of G0 couples each 8x8-pixel leaf cluster to
// itself and its 8 neighbours. Thanks to the regular pixel grid the
// coupling matrix depends only on the *relative offset* of the two
// clusters, so exactly nine unique dense 64x64 matrices cover the whole
// near field — "we store nine types of key interaction matrices and use
// them as needed during near-field multiplications".
#pragma once

#include <array>

#include "grid/quadtree.hpp"
#include "linalg/cmatrix.hpp"

namespace ffw {

class NearFieldOperators {
 public:
  /// Tables are always generated in fp64; under Precision::kMixed they
  /// are rounded once to fp32 and the fp64 copies dropped, so bytes()
  /// halves and only type32() is valid.
  explicit NearFieldOperators(const QuadTree& tree,
                              Precision precision = Precision::kDouble);

  Precision precision() const { return precision_; }

  /// Matrix for offset type t = (dy+1)*3 + (dx+1); t == 4 is self.
  const CMatrix& type(int t) const { return mats_[static_cast<std::size_t>(t)]; }

  /// fp32 copy of type t, column-major np x np (Precision::kMixed only).
  const cplx32* type32(int t) const {
    return mats32_[static_cast<std::size_t>(t)].data();
  }

  /// Scalar-generic access for the templated engine passes.
  template <typename T>
  const std::complex<T>* type_data(int t) const;

  static constexpr int kNumTypes = 9;

  /// Total operator storage (bytes) — part of the memory census.
  std::size_t bytes() const;

  /// y += G0_near * x over the whole grid, both in cluster order.
  /// Exercised standalone in tests; the MLFMA engine calls the batched
  /// per-cluster form directly for overlap with communication.
  /// fp64-only (requires Precision::kDouble tables).
  void apply(const QuadTree& tree, ccspan x, cspan y) const;

 private:
  Precision precision_ = Precision::kDouble;
  std::array<CMatrix, kNumTypes> mats_;
  std::array<cvec32, kNumTypes> mats32_;
};

template <>
inline const cplx* NearFieldOperators::type_data<double>(int t) const {
  return mats_[static_cast<std::size_t>(t)].data();
}
template <>
inline const cplx32* NearFieldOperators::type_data<float>(int t) const {
  return mats32_[static_cast<std::size_t>(t)].data();
}

}  // namespace ffw
