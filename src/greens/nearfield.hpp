// Near-field leaf operators (paper Sec. IV-D, Table I row 1).
//
// The near-field part of G0 couples each 8x8-pixel leaf cluster to
// itself and its 8 neighbours. Thanks to the regular pixel grid the
// coupling matrix depends only on the *relative offset* of the two
// clusters, so exactly nine unique dense 64x64 matrices cover the whole
// near field — "we store nine types of key interaction matrices and use
// them as needed during near-field multiplications".
#pragma once

#include <array>

#include "grid/quadtree.hpp"
#include "linalg/cmatrix.hpp"

namespace ffw {

class NearFieldOperators {
 public:
  explicit NearFieldOperators(const QuadTree& tree);

  /// Matrix for offset type t = (dy+1)*3 + (dx+1); t == 4 is self.
  const CMatrix& type(int t) const { return mats_[static_cast<std::size_t>(t)]; }

  static constexpr int kNumTypes = 9;

  /// Total operator storage (bytes) — part of the memory census.
  std::size_t bytes() const;

  /// y += G0_near * x over the whole grid, both in cluster order.
  /// Exercised standalone in tests; the MLFMA engine calls the batched
  /// per-cluster form directly for overlap with communication.
  void apply(const QuadTree& tree, ccspan x, cspan y) const;

 private:
  std::array<CMatrix, kNumTypes> mats_;
};

}  // namespace ffw
