// Fast exterior-field evaluation at the receivers.
//
// The naive scattered-field step phi_sca = G_R (O .* phi) is a dense
// R x N product — with R ~ O(sqrt(N)) that is an O(N^1.5) step, and the
// paper is explicit that "the whole inverse scattering solver has no
// other step with more than O(N) computational and storage complexity"
// (Sec. III-C). This operator restores O(N): it reuses the MLFMA upward
// pass (the source vector's outgoing spectra) and translates only the
// 16 top-level cluster expansions to each receiver,
//
//   phi(r) = (i/4) sf * sum_{c in top} (1/Q_top) sum_q
//                T_L(alpha_q; c_top - r) s_top_c(alpha_q),
//
// at cost O(N) (upward pass) + O(R * 16 * Q_top) = O(N + R sqrt(N))
// per application, instead of O(R N).
//
// Validity: receivers must be in the far zone of every top-level
// cluster. With the ring at its default radius (= D) the closest
// receiver-to-cluster-centre distance is ~0.56 D = 2.25 cluster widths,
// comfortably inside the addition theorem's region; the constructor
// checks the geometry and refuses otherwise.
#pragma once

#include "greens/transceivers.hpp"
#include "mlfma/engine.hpp"

namespace ffw {

class FastReceiverOperator {
 public:
  /// Precomputes one diagonal translation vector per (receiver,
  /// top-level cluster) pair: R * 16 * Q_top complex entries.
  FastReceiverOperator(MlfmaEngine& engine, const std::vector<Vec2>& receivers);

  /// y[r] = (G_R x)[r] where x is the *pixel source* vector (already
  /// multiplied by the contrast) in cluster order. Runs the engine's
  /// upward pass internally.
  void apply(ccspan x_cluster, cspan y);

  int num_receivers() const { return static_cast<int>(receivers_.size()); }
  std::size_t bytes() const;

 private:
  MlfmaEngine* engine_;
  std::vector<Vec2> receivers_;
  int top_level_ = 0;
  std::size_t q_top_ = 0;
  std::size_t num_top_ = 0;
  // trans_[(r * num_top + c) * q_top + q]
  cvec trans_;
  cplx prefactor_;
};

}  // namespace ffw
