#include "greens/transceivers.hpp"

#include "common/check.hpp"
#include "greens/greens.hpp"
#include "parallel/parallel_for.hpp"

namespace ffw {

std::vector<Vec2> ring_positions(int count, double radius, double angle_begin,
                                 double angle_end) {
  FFW_CHECK(count >= 1 && radius > 0.0);
  std::vector<Vec2> out(static_cast<std::size_t>(count));
  const double span = angle_end - angle_begin;
  for (int i = 0; i < count; ++i) {
    const double a = angle_begin + span * i / count;
    out[static_cast<std::size_t>(i)] = {radius * std::cos(a),
                                        radius * std::sin(a)};
  }
  return out;
}

Transceivers::Transceivers(const Grid& grid, std::vector<Vec2> transmitters,
                           std::vector<Vec2> receivers,
                           std::size_t materialize_budget)
    : grid_(&grid), tx_(std::move(transmitters)), rx_(std::move(receivers)) {
  FFW_CHECK(!tx_.empty() && !rx_.empty());
  const std::size_t n = grid.num_pixels();
  if (rx_.size() * n <= materialize_budget) {
    CMatrix m(rx_.size(), n);
    parallel_for(0, rx_.size(), [&](std::size_t r) {
      for (std::size_t p = 0; p < n; ++p) {
        m(r, p) = gr_entry(static_cast<int>(r), p);
      }
    });
    gr_ = std::move(m);
  }
}

cplx Transceivers::gr_entry(int r, std::size_t pixel) const {
  const int nx = grid_->nx();
  const Vec2 rp = grid_->pixel_center(static_cast<int>(pixel) % nx,
                                      static_cast<int>(pixel) / nx);
  const double d = norm(rx_[static_cast<std::size_t>(r)] - rp);
  return source_factor(*grid_) * g0_point(grid_->k0(), d);
}

cvec Transceivers::incident_field(int t) const {
  FFW_CHECK(t >= 0 && t < num_transmitters());
  const std::size_t n = grid_->num_pixels();
  const int nx = grid_->nx();
  const Vec2 src = tx_[static_cast<std::size_t>(t)];
  cvec out(n);
  parallel_for(0, n, [&](std::size_t p) {
    const Vec2 rp = grid_->pixel_center(static_cast<int>(p) % nx,
                                        static_cast<int>(p) / nx);
    out[p] = g0_point(grid_->k0(), norm(rp - src));
  });
  return out;
}

void Transceivers::apply_gr_subset(ccspan x_sub,
                                   std::span<const std::uint32_t> pixels,
                                   cspan y_accum) const {
  FFW_CHECK(x_sub.size() == pixels.size() && y_accum.size() == rx_.size());
  for (std::size_t r = 0; r < rx_.size(); ++r) {
    cplx acc{};
    for (std::size_t i = 0; i < pixels.size(); ++i)
      acc += gr_entry(static_cast<int>(r), pixels[i]) * x_sub[i];
    y_accum[r] += acc;
  }
}

void Transceivers::apply_gr_herm_subset(ccspan u,
                                        std::span<const std::uint32_t> pixels,
                                        cspan y_sub) const {
  FFW_CHECK(u.size() == rx_.size() && y_sub.size() == pixels.size());
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    cplx acc{};
    for (std::size_t r = 0; r < rx_.size(); ++r)
      acc += std::conj(gr_entry(static_cast<int>(r), pixels[i])) * u[r];
    y_sub[i] = acc;
  }
}

void Transceivers::incident_field_subset(int t,
                                         std::span<const std::uint32_t> pixels,
                                         cspan out) const {
  FFW_CHECK(t >= 0 && t < num_transmitters() && out.size() == pixels.size());
  const int nx = grid_->nx();
  const Vec2 src = tx_[static_cast<std::size_t>(t)];
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    const Vec2 rp = grid_->pixel_center(static_cast<int>(pixels[i]) % nx,
                                        static_cast<int>(pixels[i]) / nx);
    out[i] = g0_point(grid_->k0(), norm(rp - src));
  }
}

void Transceivers::apply_gr(ccspan x, cspan y) const {
  const std::size_t n = grid_->num_pixels();
  FFW_CHECK(x.size() == n && y.size() == rx_.size());
  if (gr_) {
    matvec(*gr_, x, y);
    return;
  }
  parallel_for(0, rx_.size(), [&](std::size_t r) {
    cplx acc{};
    for (std::size_t p = 0; p < n; ++p)
      acc += gr_entry(static_cast<int>(r), p) * x[p];
    y[r] = acc;
  });
}

void Transceivers::apply_gr_herm(ccspan x, cspan y) const {
  const std::size_t n = grid_->num_pixels();
  FFW_CHECK(x.size() == rx_.size() && y.size() == n);
  if (gr_) {
    matvec_herm(*gr_, x, y);
    return;
  }
  parallel_for(0, n, [&](std::size_t p) {
    cplx acc{};
    for (std::size_t r = 0; r < rx_.size(); ++r)
      acc += std::conj(gr_entry(static_cast<int>(r), p)) * x[r];
    y[p] = acc;
  });
}

}  // namespace ffw
