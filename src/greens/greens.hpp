// 2-D free-space Green's function and its pixel-integrated (Richmond)
// discretisation, paper Sec. VI-A.
//
//   g0(r, r') = (i/4) H0^(1)(k |r - r'|)
//
// The volume integral equation is discretised on square pixels with
// pulse bases. Following Richmond's classic scheme each pixel is
// replaced by the equal-area disk of radius a = h/sqrt(pi); the source
// integral then has closed forms:
//
//   \int_disk g0(r, r') dr' = (i/4) (2 pi a / k) J1(ka) H0^(1)(k|r - c|)
//                                                   for |r - c| > a,
//   \int_disk g0(c, r') dr' = (i pi a / (2k)) H1^(1)(ka) - 1/k^2
//                                                   (self term).
//
// This keeps the full operator inventory and O(N) structure of the
// paper's Galerkin discretisation (the source integration contributes a
// *scalar* factor to every off-diagonal entry, so MLFMA applies
// unchanged); accuracy is validated against the analytic Mie series in
// tests/forward_mie_test.cpp.
#pragma once

#include "common/types.hpp"
#include "grid/grid.hpp"
#include "linalg/cmatrix.hpp"

namespace ffw {

/// Point-kernel value g0(r) = (i/4) H0^(1)(k r), r > 0.
cplx g0_point(double k, double r);

/// Scalar source-disk integration factor: off-diagonal entries of G0 are
/// source_factor(grid) * g0_point(k, r_mn).
double source_factor(const Grid& grid);

/// The G0 diagonal (self) entry.
cplx self_term(const Grid& grid);

/// Off-diagonal pixel-integrated kernel between two pixel centres.
cplx g0_pixel(const Grid& grid, Vec2 rm, Vec2 rn);

/// Dense N x N interaction matrix G0 (reference path, O(N^2) storage —
/// exactly what the paper says becomes impossible at scale; used for
/// small-problem validation and the accuracy benchmark).
CMatrix build_dense_g0(const Grid& grid);

/// Matrix-free y = G0 * x (O(N^2) compute, O(N) storage).
cvec dense_g0_apply(const Grid& grid, ccspan x);

/// Selected rows of G0 * x: out[i] = (G0 x)[rows[i]]. Lets tests compare
/// MLFMA against the direct product on a row sample without paying the
/// full O(N^2).
cvec dense_g0_apply_rows(const Grid& grid, ccspan x,
                         std::span<const std::uint32_t> rows);

}  // namespace ffw
