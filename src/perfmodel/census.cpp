#include "perfmodel/census.hpp"

#include <map>
#include <set>

namespace ffw {

WorkCensus census_work(const QuadTree& tree, const MlfmaPlan& plan) {
  WorkCensus w;
  const double np = tree.pixels_per_leaf();
  const double nleaf = static_cast<double>(tree.num_leaves());
  if (tree.num_levels() == 0) {
    // near-field only
    const auto& nb = tree.near_begin();
    w.cmacs[static_cast<std::size_t>(MlfmaPhase::kNearField)] =
        static_cast<double>(nb.back()) * np * np;
    return w;
  }
  const double q0 = plan.level(0).samples;

  w.cmacs[static_cast<std::size_t>(MlfmaPhase::kExpansion)] = q0 * np * nleaf;
  w.cmacs[static_cast<std::size_t>(MlfmaPhase::kLocalExpansion)] =
      q0 * np * nleaf;

  double agg = 0.0, trans = 0.0;
  for (int l = 0; l < tree.num_levels(); ++l) {
    const TreeLevel& lvl = tree.level(l);
    const double q = plan.level(l).samples;
    trans += static_cast<double>(lvl.far_begin.back()) * q;
    if (l + 1 < tree.num_levels()) {
      const double qp = plan.level(l + 1).samples;
      const double children = static_cast<double>(lvl.num_clusters);
      // interp (band, width real coefficients ~ 1/2 cmac each) + shift
      agg += children * (qp * plan.interp_width() * 0.5 + qp);
    }
  }
  w.cmacs[static_cast<std::size_t>(MlfmaPhase::kAggregation)] = agg;
  w.cmacs[static_cast<std::size_t>(MlfmaPhase::kDisaggregation)] = agg;
  w.cmacs[static_cast<std::size_t>(MlfmaPhase::kTranslation)] = trans;

  const auto& nb = tree.near_begin();
  w.cmacs[static_cast<std::size_t>(MlfmaPhase::kNearField)] =
      static_cast<double>(nb.back()) * np * np;
  return w;
}

MemoryCensus census_memory(const QuadTree& tree, const MlfmaPlan& plan) {
  MemoryCensus m;
  const std::uint64_t np = static_cast<std::uint64_t>(tree.pixels_per_leaf());
  const std::uint64_t n = tree.grid().num_pixels();
  m.dense_equivalent_bytes = n * n * sizeof(cplx);

  // 9 near-field matrices.
  m.operator_bytes += 9ull * np * np * sizeof(cplx);
  if (tree.num_levels() == 0) return m;

  const std::uint64_t q0 = static_cast<std::uint64_t>(plan.level(0).samples);
  m.operator_bytes += 2ull * q0 * np * sizeof(cplx);  // expansions
  for (int l = 0; l < tree.num_levels(); ++l) {
    const std::uint64_t q = static_cast<std::uint64_t>(plan.level(l).samples);
    m.operator_bytes += 40ull * q * sizeof(cplx);  // translations
    if (l + 1 < tree.num_levels()) {
      const std::uint64_t qp =
          static_cast<std::uint64_t>(plan.level(l + 1).samples);
      m.operator_bytes += 8ull * qp * sizeof(cplx);  // 4 up + 4 down shifts
      m.operator_bytes += qp * (static_cast<std::uint64_t>(
                                    plan.interp_width()) * sizeof(double) +
                                sizeof(std::uint32_t));  // band interp
    }
    m.panel_bytes += 2ull * q * tree.level(l).num_clusters * sizeof(cplx);
  }
  return m;
}

CommCensus census_halo(const QuadTree& tree, const MlfmaPlan& plan,
                       int p_tree) {
  CommCensus out;
  const std::uint64_t np_halo =
      static_cast<std::uint64_t>(tree.pixels_per_leaf());
  if (p_tree <= 1 || tree.num_levels() == 0) return out;
  auto owner = [&](int level, std::size_t c) {
    return static_cast<int>(c * static_cast<std::size_t>(p_tree) /
                            tree.level(level).num_clusters);
  };
  std::map<int, std::uint64_t> per_rank;  // bytes touching each rank

  for (int l = 0; l < tree.num_levels(); ++l) {
    const TreeLevel& lvl = tree.level(l);
    // ghost set per (dest rank, src cluster); one message per
    // (dest, src-rank) pair per level.
    std::map<std::pair<int, int>, std::set<std::uint32_t>> need;
    for (std::size_t c = 0; c < lvl.num_clusters; ++c) {
      const int rd = owner(l, c);
      for (std::uint32_t e = lvl.far_begin[c]; e < lvl.far_begin[c + 1]; ++e) {
        const int rs = owner(l, lvl.far[e].src);
        if (rs != rd) need[{rd, rs}].insert(lvl.far[e].src);
      }
    }
    const std::uint64_t q = static_cast<std::uint64_t>(plan.level(l).samples);
    for (const auto& [key, ghosts] : need) {
      const std::uint64_t b = ghosts.size() * q * sizeof(cplx);
      out.bytes += b;
      out.messages += 1;
      out.unbuffered_messages += ghosts.size();
      per_rank[key.first] += b;
      per_rank[key.second] += b;
    }
  }
  {  // near-field leaf ghosts
    std::map<std::pair<int, int>, std::set<std::uint32_t>> need;
    for (std::size_t c = 0; c < tree.num_leaves(); ++c) {
      const int rd = owner(0, c);
      for (std::uint32_t e = tree.near_begin()[c];
           e < tree.near_begin()[c + 1]; ++e) {
        const int rs = owner(0, tree.near()[e].src);
        if (rs != rd) need[{rd, rs}].insert(tree.near()[e].src);
      }
    }
    for (const auto& [key, ghosts] : need) {
      const std::uint64_t b = ghosts.size() * np_halo * sizeof(cplx);
      out.bytes += b;
      out.messages += 1;
      out.unbuffered_messages += ghosts.size();
      per_rank[key.first] += b;
      per_rank[key.second] += b;
    }
  }
  for (const auto& [rank, b] : per_rank)
    out.max_rank_bytes = std::max(out.max_rank_bytes, b);
  return out;
}

double census_imbalance(const QuadTree& tree, const MlfmaPlan& plan,
                        int p_tree) {
  if (p_tree <= 1) return 1.0;
  const double np = tree.pixels_per_leaf();
  std::vector<double> rank_work(static_cast<std::size_t>(p_tree), 0.0);
  auto owner = [&](int level, std::size_t c) {
    return static_cast<std::size_t>(c * static_cast<std::size_t>(p_tree) /
                                    tree.level(level).num_clusters);
  };
  for (int l = 0; l < tree.num_levels(); ++l) {
    const TreeLevel& lvl = tree.level(l);
    const double q = plan.level(l).samples;
    for (std::size_t c = 0; c < lvl.num_clusters; ++c) {
      rank_work[owner(l, c)] +=
          static_cast<double>(lvl.far_begin[c + 1] - lvl.far_begin[c]) * q;
    }
  }
  for (std::size_t c = 0; c < tree.num_leaves(); ++c) {
    rank_work[owner(0, c)] +=
        static_cast<double>(tree.near_begin()[c + 1] -
                            tree.near_begin()[c]) * np * np;
  }
  double max_w = 0.0, sum_w = 0.0;
  for (double w : rank_work) {
    max_w = std::max(max_w, w);
    sum_w += w;
  }
  const double avg = sum_w / static_cast<double>(p_tree);
  return avg > 0.0 ? max_w / avg : 1.0;
}

}  // namespace ffw
