// Machine model for the scaling predictions (DESIGN.md Sec. 2).
//
// The paper's numbers come from Blue Waters XE6 (CPU) and XK7 (GPU)
// nodes on a Cray Gemini network. None of that hardware exists in this
// container, so predictions are produced by an explicit cost model:
//
//  * per-operator-class compute throughput is *measured* on this host
//    (perfmodel/predictor.hpp calibrates against real MlfmaEngine runs)
//    and scaled by `cpu_node_factor` to represent a full multi-core
//    node;
//  * the GPU is modelled per operator class with a roofline argument:
//    dense matrix-matrix operators (multipole/local expansion,
//    near-field) are compute-bound and get the flops-ratio speedup,
//    diagonal operators (translation, shifts) are bandwidth-bound and
//    get the memory-bandwidth ratio, band-diagonal interpolation sits
//    in between. Defaults are set from K20x-vs-16-core-Opteron
//    datasheet ratios; they are *documented parameters*, not
//    measurements.
//  * the network is an alpha-beta (latency + volume/bandwidth) model
//    with Gemini-like constants; communication volume comes from the
//    same interaction-list census the real partitioned engine uses
//    (verified byte-exact in tests/partitioned_test.cpp).
#pragma once

#include <array>

#include "mlfma/engine.hpp"

namespace ffw {

/// One measured point-to-point link: what the transport self-benchmark
/// (perfmodel/linkbench.hpp — a ping-pong over the shm-ring or TCP
/// backend) reports. Feeds MachineParams::apply_measured_link so the
/// alpha-beta network model can run on measured numbers instead of the
/// documented Gemini-like constants.
struct LinkParams {
  double latency_s = 0.0;       ///< one-way small-message latency
  double bandwidth_bps = 0.0;   ///< large-message throughput, bytes/s
};

struct MachineParams {
  /// Full-node CPU speed relative to the single calibration core
  /// (XE6: 16 integer cores / 8 FP modules; the paper uses 16 cores).
  double cpu_node_factor = 16.0;

  /// Modelled GPU-node speedup over the full CPU node, per MLFMA phase
  /// (order: expansion, aggregation, translation, disaggregation,
  /// local expansion, near field). Roofline-derived: K20x/XE6 peak
  /// flops ratio ~7x bounds dense ops (achieved ~5-6x), DRAM bandwidth
  /// ratio ~3.4x bounds the diagonal ops (~2.8-3x).
  std::array<double, static_cast<std::size_t>(MlfmaPhase::kCount)>
      gpu_phase_speedup{5.0, 5.9, 2.9, 2.8, 5.5, 3.9};

  /// Per-kernel-launch overhead on the GPU; smaller per-node work means
  /// more launches per useful flop, which is the paper's explanation
  /// for the lower sub-tree-scaling efficiency (Sec. V-C2).
  double gpu_kernel_overhead_s = 2.0e-5;
  /// GPU underfill knee: per-node work (cmacs per MLFMA application) at
  /// which kernel throughput halves. Splitting a 1M-unknown tree over 16
  /// nodes leaves ~1e8 cmacs per node per application — small enough
  /// that a K20x's 14 SMX are underfed ("degradation in GPU efficiency
  /// due to smaller chunks of work per kernel", Sec. V-C2). At 16M
  /// unknowns (Table III) the chunks stay large and the effect vanishes,
  /// which is exactly the paper's pattern.
  double gpu_underfill_cmacs = 4.0e7;
  /// Number of kernel launches per MLFMA application (one per phase per
  /// level, roughly).
  double kernels_per_apply(int levels) const { return 6.0 * levels; }

  /// Gemini-like interconnect. Documented constants by default;
  /// apply_measured_link() swaps in numbers from the transport
  /// self-benchmark when one has been run on this host.
  double net_latency_s = 1.5e-6;
  double net_bandwidth_bps = 6.0e9;  // bytes/s per node

  /// Replaces the documented network constants with a measured link
  /// (see perfmodel/linkbench.hpp and bench/bench_transport.cpp).
  /// Nonpositive fields leave the corresponding default untouched, so a
  /// partial or failed measurement degrades to the documented model.
  void apply_measured_link(const LinkParams& link) {
    if (link.latency_s > 0.0) net_latency_s = link.latency_s;
    if (link.bandwidth_bps > 0.0) net_bandwidth_bps = link.bandwidth_bps;
  }

  /// Fraction of non-MLFMA time in a DBIM iteration (G_R products,
  /// vector updates); measured from real runs by the calibration step.
  double non_mlfma_fraction = 0.15;
};

}  // namespace ffw
