// Transport self-benchmark: measure what moving bytes between two
// ranks actually costs on *this* machine over *this* backend, so the
// performance model's alpha-beta network term can run on measured
// numbers (MachineParams::apply_measured_link) instead of the
// documented Gemini-like constants.
//
// The measurement is the classic ping-pong: rank 0 and rank 1 bounce a
// small message to expose latency (half the mean round trip), then
// stream large payloads against a small ack to expose bandwidth (the
// latency share of each round trip is subtracted). Every other rank
// sits out and joins the closing barrier, so the benchmark runs
// unchanged on a 2-rank micro world or inside a full-size cluster, in
// threads mode or as real processes under ffw_launch.
#pragma once

#include "perfmodel/machine.hpp"
#include "vcluster/comm.hpp"

namespace ffw {

/// Reserved tag space for the self-benchmark traffic (collectives use
/// -1000.., groups -2000, checkpoints -4000.., barriers -5000..).
inline constexpr int kTagLinkBench = -7000;

struct LinkBenchOptions {
  int warmup_round_trips = 16;
  int latency_round_trips = 200;
  std::size_t bandwidth_bytes = std::size_t{1} << 20;
  int bandwidth_transfers = 8;
};

/// Runs the ping-pong between ranks 0 and 1 of `vc` (size >= 2) and
/// returns the measured link. The result is meaningful where rank 0
/// ran: always in threads mode; in process mode only the process
/// hosting rank 0 sees nonzero fields (the others return zeros, which
/// apply_measured_link treats as "keep the documented default").
LinkParams measure_link(VCluster& vc, const LinkBenchOptions& opts = {});

}  // namespace ffw
