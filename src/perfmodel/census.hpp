// Work / memory / communication census of an MLFMA configuration:
// analytic counts of complex multiply-adds per phase, operator-table
// bytes, and halo-exchange volumes for a given sub-tree partitioning.
// These are the structural inputs to the performance model, and they are
// exactly the quantities Sec. III-C of the paper analyses (O(N) work and
// storage).
#pragma once

#include <array>
#include <cstdint>

#include "mlfma/engine.hpp"

namespace ffw {

struct WorkCensus {
  /// Complex multiply-accumulate counts per full MLFMA application.
  std::array<double, static_cast<std::size_t>(MlfmaPhase::kCount)> cmacs{};

  double total() const {
    double s = 0.0;
    for (double v : cmacs) s += v;
    return s;
  }
};

/// Analytic per-phase work of one G0 application on this tree/plan.
WorkCensus census_work(const QuadTree& tree, const MlfmaPlan& plan);

/// Precomputed operator-table bytes (Table I storage) + per-level sample
/// panel bytes — the O(N) storage claim of Sec. III-C.
struct MemoryCensus {
  std::uint64_t operator_bytes = 0;  // shared lookup tables
  std::uint64_t panel_bytes = 0;     // per-level sample arrays
  std::uint64_t dense_equivalent_bytes = 0;  // what a dense G0 would need
};
MemoryCensus census_memory(const QuadTree& tree, const MlfmaPlan& plan);

/// Halo exchange per MLFMA application when the tree is split over
/// `p_tree` ranks: total bytes on the wire and message count, plus the
/// maximum per-rank byte load (the scaling bottleneck). Matches the
/// virtual-cluster traffic counters byte-for-byte (asserted in tests).
struct CommCensus {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;          // aggregated buffers (as built)
  std::uint64_t unbuffered_messages = 0;  // one message per ghost cluster
  std::uint64_t max_rank_bytes = 0;
};
CommCensus census_halo(const QuadTree& tree, const MlfmaPlan& plan,
                       int p_tree);

/// Compute load imbalance of the Morton-contiguous partitioning: the
/// busiest rank's per-application cmacs divided by the average. Corner
/// and edge clusters have shorter interaction lists, so interior-heavy
/// ranks carry more translation/near-field work.
double census_imbalance(const QuadTree& tree, const MlfmaPlan& plan,
                        int p_tree);

}  // namespace ffw
