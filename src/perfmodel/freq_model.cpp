#include "perfmodel/freq_model.hpp"

#include <algorithm>
#include <memory>

#include "grid/quadtree.hpp"

namespace ffw {

namespace {

/// Band setup on the group: operator-table build plus the leader's
/// serial measurement synthesis (one forward solve per transmitter ~=
/// one of the three blocked passes of a single-node DBIM iteration).
double band_setup_time(const ScalingModel& model, const FreqBandSpec& band,
                       const QuadTree& tree, const MlfmaPlan& plan,
                       bool gpu) {
  ProblemSpec one_iter{band.nx, band.transmitters, 1};
  return model.reconstruction_time(one_iter, tree, plan, 1, 1, gpu, false) /
         3.0;
}

/// Warm-start hand-off: one natural-order image over one link.
double handoff_time(const ScalingModel& model, const FreqBandSpec& band) {
  const double bytes =
      static_cast<double>(band.nx) * band.nx * sizeof(cplx);
  return model.machine().net_latency_s +
         bytes / model.machine().net_bandwidth_bps;
}

}  // namespace

double freq_pipeline_time(const ScalingModel& model,
                          const std::vector<FreqBandSpec>& bands,
                          int freq_groups, int illum_groups, int tree_ranks,
                          bool gpu) {
  FFW_CHECK(freq_groups >= 1 && illum_groups >= 1 && tree_ranks >= 1);
  if (bands.empty()) return 0.0;

  // Trees/plans per distinct nx (bands of a ladder share the fine tree's
  // parameters, coarser rungs their own smaller ones).
  std::vector<std::pair<int, std::unique_ptr<QuadTree>>> trees;
  std::vector<std::unique_ptr<MlfmaPlan>> plans;
  const auto lookup = [&](int nx) -> std::size_t {
    for (std::size_t i = 0; i < trees.size(); ++i)
      if (trees[i].first == nx) return i;
    trees.emplace_back(nx, std::make_unique<QuadTree>(Grid(nx), 8));
    plans.push_back(
        std::make_unique<MlfmaPlan>(*trees.back().second, MlfmaParams{}));
    return trees.size() - 1;
  };

  std::vector<double> group_free(static_cast<std::size_t>(freq_groups), 0.0);
  double chain_t = 0.0;  // when the previous band's image is ready
  for (std::size_t s = 0; s < bands.size(); ++s) {
    const FreqBandSpec& band = bands[s];
    const std::size_t ti = lookup(band.nx);
    const QuadTree& tree = *trees[ti].second;
    const MlfmaPlan& plan = *plans[ti];
    const int g = static_cast<int>(s) % freq_groups;

    const double setup_done =
        group_free[static_cast<std::size_t>(g)] +
        band_setup_time(model, band, tree, plan, gpu);
    double ready = setup_done;
    if (s > 0) {
      // Same-group successors reuse the locally-held image; only a
      // cross-group hand-off pays the link.
      const int prev_g = static_cast<int>(s - 1) % freq_groups;
      const double link =
          prev_g == g ? 0.0 : handoff_time(model, bands[s - 1]);
      ready = std::max(setup_done, chain_t + link);
    }
    ProblemSpec spec{band.nx, band.transmitters, band.dbim_iterations};
    const double end = ready + model.reconstruction_time(
                                   spec, tree, plan, illum_groups,
                                   tree_ranks, gpu, false);
    chain_t = end;
    group_free[static_cast<std::size_t>(g)] = end;
  }
  return chain_t;
}

Freq3dChoice choose_freq_partition(const ScalingModel& model,
                                   const std::vector<FreqBandSpec>& bands,
                                   int nodes, bool gpu) {
  FFW_CHECK(nodes >= 1 && !bands.empty());
  Freq3dChoice best;
  bool have = false;
  const int nbands = static_cast<int>(bands.size());
  for (int fg = 1; fg <= std::min(nodes, nbands); ++fg) {
    if (nodes % fg != 0) continue;
    const int per = nodes / fg;
    for (int tr = 1; tr <= std::min(per, 16); tr *= 2) {
      if (per % tr != 0) continue;
      const int ig = per / tr;
      const double t = freq_pipeline_time(model, bands, fg, ig, tr, gpu);
      if (!have || t < best.time_s) {
        best = Freq3dChoice{fg, ig, tr, t};
        have = true;
      }
    }
  }
  return best;
}

}  // namespace ffw
