// Scaling predictor: turns measured kernel rates + analytic work/comm
// censuses + the machine model into the paper's evaluation artefacts
// (Figs. 9-12, Tables III-IV).
//
// Inputs and their provenance:
//   * CalibratedRates — *measured* on this host by running the real
//     MLFMA engine and real small DBIM reconstructions (calibrate()).
//   * WorkCensus / CommCensus — analytic counts from the actual tree
//     and interaction lists at paper scale (census.hpp); the comm census
//     is byte-identical to the virtual cluster's measured traffic.
//   * MachineParams — documented hardware constants (machine.hpp).
//
// The forward-solver iteration-count variation (the paper's explanation
// for its weak-scaling gap, Sec. V-D) is modelled by resampling the
// measured per-solve iteration counts with a deterministic hash, so the
// same illumination gets the same iteration counts regardless of how
// many nodes the schedule spreads it over.
#pragma once

#include <vector>

#include "perfmodel/census.hpp"
#include "perfmodel/machine.hpp"

namespace ffw {

struct CalibratedRates {
  /// Measured single-core throughput per phase (cmacs/s).
  std::array<double, static_cast<std::size_t>(MlfmaPhase::kCount)>
      cmacs_per_s{};
  /// Measured MLFMA applications per forward solve (paper: 13.4).
  double mlfma_per_solve = 13.0;
  /// Measured BiCGStab iteration statistics across solves.
  double bicgs_mean = 6.5;
  double bicgs_std = 1.0;
  /// Systematic per-illumination spread: some transmitters are
  /// persistently harder (their solves need more iterations every DBIM
  /// iteration). This is the component that cannot average out when a
  /// node owns few illuminations — the paper's stated source of the
  /// Fig. 9/11 efficiency gaps.
  double bicgs_illum_std = 0.0;
  /// Measured growth of the mean iteration count with domain side
  /// (iterations ~ (D/D_ref)^gamma): bigger domains mean longer optical
  /// paths and slower Born-series convergence. This is what the paper
  /// adjusts out in its weak-scaling analysis (Sec. V-D: "the number of
  /// BiCGS iterations in forward problems changes, creating a
  /// disproportional scaling of the problem size").
  double bicgs_domain_exponent = 0.0;
};

/// Times the real engine at `nx` and derives per-phase rates; runs a
/// real small reconstruction to obtain solver-shape statistics.
CalibratedRates calibrate(int nx = 128, int applies = 3);

/// The reconstruction problem being modelled (paper-scale).
struct ProblemSpec {
  int nx = 1024;           // 1024 -> 1M unknowns (102.4 lambda)
  int transmitters = 1024;
  int dbim_iterations = 50;
};

struct ScalingPoint {
  int nodes = 0;
  double time_s = 0.0;
  double efficiency = 0.0;           // vs the first point of the series
  double adjusted_time_s = 0.0;      // iteration variation factored out
  double adjusted_efficiency = 0.0;
};

class ScalingModel {
 public:
  ScalingModel(MachineParams machine, CalibratedRates rates);

  /// Seconds for one MLFMA application of the given tree on one node
  /// (tree split over p_tree nodes; returns the per-node critical-path
  /// time including halo communication).
  double mlfma_apply_time(const QuadTree& tree, const MlfmaPlan& plan,
                          int p_tree, bool gpu) const;

  /// Full reconstruction wall time with p_illum illumination groups x
  /// p_tree tree ranks (nodes = p_illum * p_tree).
  double reconstruction_time(const ProblemSpec& spec, const QuadTree& tree,
                             const MlfmaPlan& plan, int p_illum, int p_tree,
                             bool gpu, bool adjusted) const;

  /// Fig. 9 / Fig. 10 — strong scaling (fixed problem).
  std::vector<ScalingPoint> strong_scaling_illuminations(
      const ProblemSpec& spec, const QuadTree& tree, const MlfmaPlan& plan,
      const std::vector<int>& node_counts, bool gpu) const;
  std::vector<ScalingPoint> strong_scaling_subtrees(
      const ProblemSpec& spec, const QuadTree& tree, const MlfmaPlan& plan,
      int base_nodes, const std::vector<int>& node_counts, bool gpu) const;

  /// Fig. 11 — weak scaling across illuminations: T grows with nodes.
  std::vector<ScalingPoint> weak_scaling_illuminations(
      const ProblemSpec& base, const QuadTree& tree, const MlfmaPlan& plan,
      const std::vector<int>& node_counts, bool gpu) const;

  const MachineParams& machine() const { return machine_; }
  const CalibratedRates& rates() const { return rates_; }

  /// Per-phase one-node and p-node times (Table III rows).
  struct PhaseTimes16 {
    double cpu1 = 0.0, gpu1 = 0.0, cpu16 = 0.0, gpu16 = 0.0;
  };
  PhaseTimes16 phase_scaling(const QuadTree& tree, const MlfmaPlan& plan,
                             MlfmaPhase phase, int p_tree) const;

 private:
  double phase_compute_time(const WorkCensus& work, MlfmaPhase phase,
                            int p_tree, bool gpu) const;
  double halo_time(const QuadTree& tree, const MlfmaPlan& plan,
                   int p_tree) const;
  /// Deterministic per-(illumination, iteration, solve) BiCGStab
  /// iteration count sample.
  double sampled_iters(int t, int iter, int solve) const;

  MachineParams machine_;
  CalibratedRates rates_;
};

}  // namespace ffw
