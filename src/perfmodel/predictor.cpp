#include "perfmodel/predictor.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "dbim/dbim.hpp"
#include "phantom/setup.hpp"

namespace ffw {

CalibratedRates calibrate(int nx, int applies) {
  CalibratedRates rates;
  {  // Per-phase rates from real engine timings.
    Grid grid(nx);
    QuadTree tree(grid);
    MlfmaEngine engine(tree);
    const std::size_t n = grid.num_pixels();
    Rng rng(71);
    cvec x(n), y(n);
    rng.fill_cnormal(x);
    engine.apply(x, y);  // warm-up (touches all tables)
    engine.clear_phase_times();
    for (int i = 0; i < applies; ++i) engine.apply(x, y);
    const WorkCensus work = census_work(tree, engine.plan());
    for (std::size_t p = 0; p < rates.cmacs_per_s.size(); ++p) {
      const double t = engine.phase_times().seconds[p] / applies;
      rates.cmacs_per_s[p] = t > 0.0 ? work.cmacs[p] / t : 1e9;
    }
  }
  {  // Solver shape from a real small reconstruction.
    // A representative regime: a multi-wavelength domain and a contrast
    // strong enough that forward solves need several BiCGS iterations,
    // as at paper scale (the paper averages 13.4 MLFMA products, i.e.
    // ~6.5 iterations, per solve). A tiny weak-contrast scene would
    // yield 1-2 iterations and overstate the relative variation.
    ScenarioConfig cfg;
    cfg.nx = 64;
    cfg.num_transmitters = 6;
    cfg.num_receivers = 24;
    Grid grid(cfg.nx);
    Scenario scene(cfg, annulus(grid, 1.0, 2.0, cplx{0.04, 0.0}));
    DbimWorkspace ws(scene.engine(), scene.transceivers(),
                     scene.measurements(), cfg.forward);
    cvec grad(grid.num_pixels()), residual(scene.measurements().rows());
    // Calibrate around a mid-reconstruction background (a perturbed copy
    // of the truth): a zero background makes the system the identity and
    // every solve trivial, which is not the regime the paper reports
    // (13.4 MLFMA multiplications per solve).
    cvec o(scene.true_contrast().begin(), scene.true_contrast().end());
    for (auto& v : o) v *= 0.7;
    for (int iter = 0; iter < 4; ++iter) {
      ws.set_background(o);
      std::fill(grad.begin(), grad.end(), cplx{});
      for (int t = 0; t < cfg.num_transmitters; ++t) {
        ws.residual_pass(t, residual);
        ws.gradient_pass(t, residual, grad);
      }
      // crude gradient step, enough to vary the background
      double gmax = 0.0;
      for (const auto& v : grad) gmax = std::max(gmax, std::abs(v));
      if (gmax > 0) {
        for (std::size_t i = 0; i < o.size(); ++i)
          o[i] -= 0.2 / gmax * grad[i];
      }
    }
    const ForwardStats& st = ws.solver().stats();
    rates.mlfma_per_solve = st.solves
                                ? static_cast<double>(st.operator_applications) /
                                      static_cast<double>(st.solves)
                                : 13.0;
    // Drop trivial (converged-on-entry) solves: they are an artefact of
    // warm starts at this tiny calibration size, not of paper-scale runs.
    std::vector<double> samples;
    for (auto it : st.per_solve_iterations) {
      if (it > 0) samples.push_back(static_cast<double>(it));
    }
    if (!samples.empty()) {
      double mean = 0.0;
      for (double v : samples) mean += v;
      mean /= static_cast<double>(samples.size());
      double var = 0.0;
      for (double v : samples) var += (v - mean) * (v - mean);
      var /= static_cast<double>(samples.size());
      rates.bicgs_mean = std::max(1.0, mean);
      rates.bicgs_std = std::sqrt(var);
    }
  }
  {  // Iteration growth with domain size: real forward solves on a
     // proportionally scaled annulus at three domain sizes.
    std::vector<double> iters;
    for (int nx : {32, 64, 128}) {
      Grid grid(nx);
      QuadTree tree(grid);
      MlfmaEngine engine(tree);
      ForwardSolver fs(engine);
      const double d = grid.domain();
      fs.set_contrast(contrast_from_permittivity(
          grid, annulus(grid, 0.16 * d, 0.31 * d, cplx{0.04, 0.0})));
      Transceivers trx(grid, ring_positions(1, d), ring_positions(4, d));
      const cvec inc = trx.incident_field(0);
      cvec phi(grid.num_pixels(), cplx{});
      const BicgstabResult r = fs.solve(inc, phi);
      iters.push_back(std::max(1.0, static_cast<double>(r.iterations)));
    }
    rates.bicgs_domain_exponent =
        std::log(iters.back() / iters.front()) / std::log(128.0 / 32.0);
  }
  return rates;
}

ScalingModel::ScalingModel(MachineParams machine, CalibratedRates rates)
    : machine_(std::move(machine)), rates_(std::move(rates)) {}

double ScalingModel::phase_compute_time(const WorkCensus& work,
                                        MlfmaPhase phase, int p_tree,
                                        bool gpu) const {
  const std::size_t p = static_cast<std::size_t>(phase);
  const double node_rate = rates_.cmacs_per_s[p] * machine_.cpu_node_factor *
                           (gpu ? machine_.gpu_phase_speedup[p] : 1.0);
  return work.cmacs[p] / static_cast<double>(p_tree) / node_rate;
}

double ScalingModel::halo_time(const QuadTree& tree, const MlfmaPlan& plan,
                               int p_tree) const {
  if (p_tree <= 1) return 0.0;
  const CommCensus comm = census_halo(tree, plan, p_tree);
  // Critical path: the busiest rank's bytes, plus per-message latency.
  const double msgs_per_rank =
      static_cast<double>(comm.messages) / static_cast<double>(p_tree);
  return static_cast<double>(comm.max_rank_bytes) / machine_.net_bandwidth_bps +
         msgs_per_rank * machine_.net_latency_s;
}

double ScalingModel::mlfma_apply_time(const QuadTree& tree,
                                      const MlfmaPlan& plan, int p_tree,
                                      bool gpu) const {
  const WorkCensus work = census_work(tree, plan);
  double compute = 0.0;
  for (std::size_t p = 0; p < work.cmacs.size(); ++p) {
    compute +=
        phase_compute_time(work, static_cast<MlfmaPhase>(p), p_tree, gpu);
  }
  // Interaction lists are shorter near domain edges, so Morton-range
  // partitions are not perfectly balanced; the slowest rank sets the pace.
  compute *= census_imbalance(tree, plan, p_tree);
  if (gpu) {
    // Kernel-granularity loss: throughput halves when per-node work per
    // application reaches the underfill knee (paper Sec. V-C2).
    const double per_node = work.total() / static_cast<double>(p_tree);
    compute *= 1.0 + machine_.gpu_underfill_cmacs / per_node;
    compute += machine_.gpu_kernel_overhead_s *
               machine_.kernels_per_apply(tree.num_levels());
  }
  const double comm = halo_time(tree, plan, p_tree);
  // GPU nodes overlap communication (CPU posts/drains while the GPU
  // computes, paper Fig. 8); CPU nodes pay it serially.
  return gpu ? std::max(compute, comm) : compute + comm;
}

namespace {
/// Deterministic standard-normal sample from an integer key.
double hash_normal(std::initializer_list<std::uint64_t> key) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  for (std::uint64_t v : key) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 31;
  }
  const double u1 =
      (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;  // (0,1)
  std::uint64_t h2 = h * 0x94D049BB133111EBull;
  h2 ^= h2 >> 29;
  const double u2 = (static_cast<double>(h2 >> 11) + 0.5) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * pi * u2);
}
}  // namespace

double ScalingModel::sampled_iters(int t, int iter, int solve) const {
  // Two variation components: a per-illumination systematic offset
  // (persistent across DBIM iterations — never averages out on a node
  // that owns few illuminations) and a per-solve fluctuation.
  const double systematic =
      rates_.bicgs_illum_std * hash_normal({static_cast<std::uint64_t>(t)});
  const double fluctuation =
      rates_.bicgs_std *
      hash_normal({static_cast<std::uint64_t>(t),
                   static_cast<std::uint64_t>(iter),
                   static_cast<std::uint64_t>(solve) + 17});
  return std::max(1.0, rates_.bicgs_mean + systematic + fluctuation);
}

double ScalingModel::reconstruction_time(const ProblemSpec& spec,
                                         const QuadTree& tree,
                                         const MlfmaPlan& plan, int p_illum,
                                         int p_tree, bool gpu,
                                         bool adjusted) const {
  const double t_apply = mlfma_apply_time(tree, plan, p_tree, gpu);
  // MLFMA applications per solve scale with the iteration count; the
  // measured ratio is per mean-iteration solve.
  const double apps_per_iter = rates_.mlfma_per_solve / rates_.bicgs_mean;
  // Iteration counts grow with the domain side (measured exponent). The
  // "adjusted" metric normalises to the reference 102.4-lambda domain,
  // exactly like the paper's adjustment to the 64-node baseline.
  const double domain_factor =
      adjusted ? 1.0
               : std::pow(static_cast<double>(spec.nx) / 1024.0,
                          rates_.bicgs_domain_exponent);

  // Synchronisation across illumination groups: the gradient combine and
  // the step combine, each an allreduce of the rank-local image slice.
  const std::size_t slice = tree.grid().num_pixels() /
                            static_cast<std::size_t>(p_tree);
  const double rounds = std::ceil(std::log2(std::max(2, p_illum)));
  const double sync = p_illum > 1
                          ? 2.0 * rounds *
                                (machine_.net_latency_s +
                                 static_cast<double>(slice * sizeof(cplx)) /
                                     machine_.net_bandwidth_bps)
                          : 0.0;

  double total = 0.0;
  for (int iter = 0; iter < spec.dbim_iterations; ++iter) {
    double iter_max = 0.0;
    for (int g = 0; g < p_illum; ++g) {
      double node_time = 0.0;
      for (int t = g; t < spec.transmitters; t += p_illum) {
        for (int solve = 0; solve < 3; ++solve) {
          const double iters =
              (adjusted ? rates_.bicgs_mean : sampled_iters(t, iter, solve)) *
              domain_factor;
          node_time += iters * apps_per_iter * t_apply;
        }
      }
      iter_max = std::max(iter_max, node_time);
    }
    total += iter_max * (1.0 + machine_.non_mlfma_fraction) + sync;
  }
  return total;
}

namespace {
std::vector<ScalingPoint> finalise(std::vector<ScalingPoint> pts) {
  if (pts.empty()) return pts;
  const double t0 = pts.front().time_s * pts.front().nodes;
  const double a0 = pts.front().adjusted_time_s * pts.front().nodes;
  for (auto& p : pts) {
    p.efficiency = t0 / (p.time_s * p.nodes);
    p.adjusted_efficiency = a0 / (p.adjusted_time_s * p.nodes);
  }
  return pts;
}
}  // namespace

std::vector<ScalingPoint> ScalingModel::strong_scaling_illuminations(
    const ProblemSpec& spec, const QuadTree& tree, const MlfmaPlan& plan,
    const std::vector<int>& node_counts, bool gpu) const {
  std::vector<ScalingPoint> out;
  for (int nodes : node_counts) {
    ScalingPoint p;
    p.nodes = nodes;
    p.time_s = reconstruction_time(spec, tree, plan, nodes, 1, gpu, false);
    p.adjusted_time_s =
        reconstruction_time(spec, tree, plan, nodes, 1, gpu, true);
    out.push_back(p);
  }
  return finalise(std::move(out));
}

std::vector<ScalingPoint> ScalingModel::strong_scaling_subtrees(
    const ProblemSpec& spec, const QuadTree& tree, const MlfmaPlan& plan,
    int base_nodes, const std::vector<int>& node_counts, bool gpu) const {
  std::vector<ScalingPoint> out;
  for (int nodes : node_counts) {
    const int p_tree = nodes / base_nodes;
    ScalingPoint p;
    p.nodes = nodes;
    p.time_s =
        reconstruction_time(spec, tree, plan, base_nodes, p_tree, gpu, false);
    p.adjusted_time_s =
        reconstruction_time(spec, tree, plan, base_nodes, p_tree, gpu, true);
    out.push_back(p);
  }
  return finalise(std::move(out));
}

std::vector<ScalingPoint> ScalingModel::weak_scaling_illuminations(
    const ProblemSpec& base, const QuadTree& tree, const MlfmaPlan& plan,
    const std::vector<int>& node_counts, bool gpu) const {
  std::vector<ScalingPoint> out;
  for (int nodes : node_counts) {
    ProblemSpec spec = base;
    spec.transmitters = nodes;  // one illumination per node
    ScalingPoint p;
    p.nodes = nodes;
    p.time_s = reconstruction_time(spec, tree, plan, nodes, 1, gpu, false);
    p.adjusted_time_s =
        reconstruction_time(spec, tree, plan, nodes, 1, gpu, true);
    out.push_back(p);
  }
  // Weak scaling efficiency: time should stay constant.
  if (!out.empty()) {
    const double t0 = out.front().time_s;
    const double a0 = out.front().adjusted_time_s;
    for (auto& p : out) {
      p.efficiency = t0 / p.time_s;
      p.adjusted_efficiency = a0 / p.adjusted_time_s;
    }
  }
  return out;
}

ScalingModel::PhaseTimes16 ScalingModel::phase_scaling(
    const QuadTree& tree, const MlfmaPlan& plan, MlfmaPhase phase,
    int p_tree) const {
  const WorkCensus work = census_work(tree, plan);
  PhaseTimes16 out;
  out.cpu1 = phase_compute_time(work, phase, 1, false);
  out.gpu1 = phase_compute_time(work, phase, 1, true);
  // Communication is charged to the phases that need it (translation and
  // near field), split by their share of the halo volume.
  double comm = 0.0;
  if (phase == MlfmaPhase::kTranslation || phase == MlfmaPhase::kNearField) {
    comm = 0.5 * halo_time(tree, plan, p_tree);
  }
  const double imb = census_imbalance(tree, plan, p_tree);
  const double per_node = work.total() / static_cast<double>(p_tree);
  const double underfill = 1.0 + machine_.gpu_underfill_cmacs / per_node;
  const double c_cpu = phase_compute_time(work, phase, p_tree, false) * imb;
  const double c_gpu =
      phase_compute_time(work, phase, p_tree, true) * imb * underfill;
  out.cpu16 = c_cpu + comm;                 // CPU pays communication
  out.gpu16 = std::max(c_gpu, comm);        // GPU overlaps it (Fig. 8)
  return out;
}

}  // namespace ffw
