#include "perfmodel/linkbench.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/check.hpp"

namespace ffw {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

LinkParams measure_link(VCluster& vc, const LinkBenchOptions& opts) {
  FFW_CHECK_MSG(vc.size() >= 2, "linkbench needs at least two ranks");
  LinkParams out;
  vc.run([&](Comm& c) {
    const std::vector<unsigned char> small(8, 0xA5);
    if (c.rank() == 0) {
      // Latency: round trips of an 8-byte payload. The warmup absorbs
      // one-time costs (first futex wake, socket slow start, mailbox
      // allocation) that would otherwise pollute the mean.
      for (int i = 0; i < opts.warmup_round_trips; ++i) {
        c.send(1, kTagLinkBench, std::span<const unsigned char>(small));
        (void)c.recv<unsigned char>(1, kTagLinkBench);
      }
      auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < opts.latency_round_trips; ++i) {
        c.send(1, kTagLinkBench, std::span<const unsigned char>(small));
        (void)c.recv<unsigned char>(1, kTagLinkBench);
      }
      const double rtt =
          seconds_since(t0) / std::max(1, opts.latency_round_trips);

      // Bandwidth: large payloads against a small ack; each round trip
      // pays one payload transfer plus roughly one small-message RTT,
      // which is subtracted before dividing.
      const std::vector<unsigned char> big(opts.bandwidth_bytes, 0x5A);
      t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < opts.bandwidth_transfers; ++i) {
        c.send(1, kTagLinkBench, std::span<const unsigned char>(big));
        (void)c.recv<unsigned char>(1, kTagLinkBench);
      }
      const double per_transfer =
          seconds_since(t0) / std::max(1, opts.bandwidth_transfers);
      out.latency_s = rtt / 2.0;
      out.bandwidth_bps = static_cast<double>(opts.bandwidth_bytes) /
                          std::max(per_transfer - rtt, 1e-9);
    } else if (c.rank() == 1) {
      const int echoes =
          opts.warmup_round_trips + opts.latency_round_trips;
      for (int i = 0; i < echoes; ++i) {
        (void)c.recv<unsigned char>(0, kTagLinkBench);
        c.send(0, kTagLinkBench, std::span<const unsigned char>(small));
      }
      for (int i = 0; i < opts.bandwidth_transfers; ++i) {
        (void)c.recv<unsigned char>(0, kTagLinkBench);
        c.send(0, kTagLinkBench, std::span<const unsigned char>(small));
      }
    }
    c.barrier();
  });
  return out;
}

}  // namespace ffw
