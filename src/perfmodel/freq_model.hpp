// 3-D partition model: extends the paper's (illuminations x sub-trees)
// scaling predictor with the frequency axis of the continuation ladder
// (dbim/continuation_parallel.hpp). Given a node pool and a ladder of
// bands, the model simulates the pipelined schedule — per-band setup
// (table builds + leader measurement synthesis) overlaps other groups'
// reconstructions; the warm-start hand-off serialises the chain — and
// picks the (freq_groups, illum_groups, tree_ranks) split with the
// smallest predicted wall time. The network cost of the hand-off uses
// the same alpha-beta machine model as the halo exchanges, so numbers
// measured by the transport self-benchmark (LinkParams via
// MachineParams::apply_measured_link) flow into the 3-D choice too.
#pragma once

#include <vector>

#include "perfmodel/predictor.hpp"

namespace ffw {

/// One rung of the ladder as the model sees it: grid side, transmitter
/// count, and the band's DBIM iteration budget.
struct FreqBandSpec {
  int nx = 0;
  int transmitters = 0;
  int dbim_iterations = 0;
};

struct Freq3dChoice {
  int freq_groups = 1;
  int illum_groups = 1;
  int tree_ranks = 1;
  double time_s = 0.0;
};

/// Predicted wall time of the ladder on freq_groups band groups, each an
/// illum_groups x tree_ranks grid (bands round-robin over groups, like
/// make_freq_partition). Models the pipeline: band s cannot start its
/// DBIM before max(its group is free and its setup is done, band s-1
/// finished and the warm-start image crossed one link).
double freq_pipeline_time(const ScalingModel& model,
                          const std::vector<FreqBandSpec>& bands,
                          int freq_groups, int illum_groups, int tree_ranks,
                          bool gpu);

/// Enumerates every (fg, ig, tr) with fg * ig * tr == nodes, fg <= band
/// count and tr a power of two <= 16 (the PartitionedMlfma top-level
/// constraint), and returns the minimum-time choice.
Freq3dChoice choose_freq_partition(const ScalingModel& model,
                                   const std::vector<FreqBandSpec>& bands,
                                   int nodes, bool gpu);

}  // namespace ffw
