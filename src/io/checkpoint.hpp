// Binary checkpointing for long reconstructions.
//
// The paper's runs burn thousands of node-hours; losing a 50-iteration
// DBIM run to a node failure is expensive, so production deployments
// checkpoint the outer-loop state. The format is a minimal tagged
// binary container (magic, version, named complex arrays) — no external
// serialisation library, consistent with the repository's
// no-dependencies rule.
#pragma once

#include <map>
#include <string>

#include "common/types.hpp"
#include "forward/backend.hpp"

namespace ffw {

class Checkpoint {
 public:
  /// Store/overwrite a named complex array.
  void put(const std::string& name, ccspan data);
  /// Store a named scalar (kept as a 1-element array).
  void put_scalar(const std::string& name, double value);

  bool contains(const std::string& name) const;
  /// Fetch a named array; aborts if missing (use contains() to probe).
  const cvec& get(const std::string& name) const;
  double get_scalar(const std::string& name) const;

  /// Serialise to / restore from a file. Returns false on I/O errors or
  /// a malformed/mismatched file (restore leaves *this empty then).
  bool save(const std::string& path) const;
  bool load(const std::string& path);

  std::size_t size() const { return arrays_.size(); }

 private:
  std::map<std::string, cvec> arrays_;
};

/// DBIM outer-loop state round trip: everything needed to resume a
/// reconstruction at iteration k (contrast, previous gradient and
/// direction, residual history), plus the precision policy the run was
/// produced under — resuming a mixed-precision run with a pure-fp64
/// engine (or vice versa) silently changes the convergence trajectory,
/// so the policy is recorded and validated on resume.
struct DbimCheckpoint {
  int iteration = 0;
  /// True if the run used a mixed-precision engine (DbimOptions::
  /// mixed_engine != nullptr). Files written before this field existed
  /// load as false (they predate mixed-precision support).
  bool mixed_precision = false;
  /// Forward-backend policy the run was produced under (DbimOptions::
  /// backend). Resuming under a different policy changes which engine
  /// answers each solve and hence the convergence trajectory, so it is
  /// recorded and validated on resume exactly like the precision policy.
  /// Files written before multi-backend support load as kMlfma.
  BackendKind backend = BackendKind::kMlfma;
  cvec contrast;
  cvec gradient_prev;
  cvec direction;
  rvec residual_history;

  bool save(const std::string& path) const;
  bool load(const std::string& path);
};

}  // namespace ffw
