#include "io/checkpoint.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/check.hpp"

namespace ffw {

namespace {
constexpr char kMagic[8] = {'F', 'F', 'W', 'C', 'K', 'P', 'T', '1'};

bool write_u64(std::FILE* f, std::uint64_t v) {
  return std::fwrite(&v, sizeof v, 1, f) == 1;
}

bool read_u64(std::FILE* f, std::uint64_t& v) {
  return std::fread(&v, sizeof v, 1, f) == 1;
}
}  // namespace

void Checkpoint::put(const std::string& name, ccspan data) {
  arrays_[name] = cvec(data.begin(), data.end());
}

void Checkpoint::put_scalar(const std::string& name, double value) {
  arrays_[name] = cvec{cplx{value, 0.0}};
}

bool Checkpoint::contains(const std::string& name) const {
  return arrays_.count(name) != 0;
}

const cvec& Checkpoint::get(const std::string& name) const {
  auto it = arrays_.find(name);
  FFW_CHECK_MSG(it != arrays_.end(), "missing checkpoint entry");
  return it->second;
}

double Checkpoint::get_scalar(const std::string& name) const {
  const cvec& v = get(name);
  FFW_CHECK(v.size() == 1);
  return v[0].real();
}

bool Checkpoint::save(const std::string& path) const {
  // Write-to-temp + atomic rename: a crash mid-write must never truncate
  // the previous good checkpoint at `path` — the crash-recovery protocol
  // (DESIGN.md Sec. 12) relies on the last completed save staying loadable.
  // The temp name is pid-qualified: with real-process ranks, two
  // supervisor restarts can briefly both run a rank 0 writing the same
  // checkpoint path, and a shared ".tmp" would let one truncate the
  // file mid-write of the other — each then renames its own complete
  // temp, so `path` only ever flips between complete checkpoints.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  bool ok = std::fwrite(kMagic, sizeof kMagic, 1, f) == 1 &&
            write_u64(f, arrays_.size());
  for (const auto& [name, data] : arrays_) {
    if (!ok) break;
    ok = write_u64(f, name.size()) &&
         std::fwrite(name.data(), 1, name.size(), f) == name.size() &&
         write_u64(f, data.size()) &&
         (data.empty() ||
          std::fwrite(data.data(), sizeof(cplx), data.size(), f) ==
              data.size());
  }
  ok = (std::fflush(f) == 0) && ok;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool Checkpoint::load(const std::string& path) {
  arrays_.clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char magic[sizeof kMagic];
  bool ok = std::fread(magic, sizeof magic, 1, f) == 1 &&
            std::memcmp(magic, kMagic, sizeof kMagic) == 0;
  std::uint64_t count = 0;
  ok = ok && read_u64(f, count) && count < (1u << 20);
  for (std::uint64_t i = 0; ok && i < count; ++i) {
    std::uint64_t name_len = 0, data_len = 0;
    ok = read_u64(f, name_len) && name_len < (1u << 16);
    std::string name(name_len, '\0');
    ok = ok && std::fread(name.data(), 1, name_len, f) == name_len &&
         read_u64(f, data_len) && data_len < (std::uint64_t{1} << 32);
    if (!ok) break;
    cvec data(data_len);
    if (data_len) {
      ok = std::fread(data.data(), sizeof(cplx), data_len, f) == data_len;
    }
    if (ok) arrays_[name] = std::move(data);
  }
  std::fclose(f);
  if (!ok) arrays_.clear();
  return ok;
}

bool DbimCheckpoint::save(const std::string& path) const {
  Checkpoint ck;
  ck.put_scalar("iteration", iteration);
  ck.put_scalar("mixed_precision", mixed_precision ? 1.0 : 0.0);
  ck.put_scalar("backend", static_cast<double>(static_cast<int>(backend)));
  ck.put("contrast", contrast);
  ck.put("gradient_prev", gradient_prev);
  ck.put("direction", direction);
  cvec hist(residual_history.size());
  for (std::size_t i = 0; i < hist.size(); ++i)
    hist[i] = cplx{residual_history[i], 0.0};
  ck.put("residual_history", hist);
  return ck.save(path);
}

bool DbimCheckpoint::load(const std::string& path) {
  Checkpoint ck;
  if (!ck.load(path)) return false;
  if (!ck.contains("iteration") || !ck.contains("contrast") ||
      !ck.contains("gradient_prev") || !ck.contains("direction") ||
      !ck.contains("residual_history")) {
    return false;
  }
  iteration = static_cast<int>(ck.get_scalar("iteration"));
  // Legacy files (written before the precision policy was recorded)
  // lack this entry; they predate mixed-precision support, so fp64.
  mixed_precision =
      ck.contains("mixed_precision") && ck.get_scalar("mixed_precision") != 0.0;
  // Legacy files predate the CBS backend: everything was MLFMA.
  backend = ck.contains("backend")
                ? static_cast<BackendKind>(
                      static_cast<int>(ck.get_scalar("backend")))
                : BackendKind::kMlfma;
  contrast = ck.get("contrast");
  gradient_prev = ck.get("gradient_prev");
  direction = ck.get("direction");
  const cvec& hist = ck.get("residual_history");
  residual_history.resize(hist.size());
  for (std::size_t i = 0; i < hist.size(); ++i)
    residual_history[i] = hist[i].real();
  return true;
}

}  // namespace ffw
