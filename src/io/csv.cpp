#include "io/csv.hpp"

#include <cstdio>

namespace ffw {

bool write_csv(const std::string& path,
               const std::vector<CsvColumn>& columns) {
  if (columns.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::size_t rows = 0;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::fprintf(f, "%s%s", columns[c].name.c_str(),
                 c + 1 < columns.size() ? "," : "\n");
    rows = std::max(rows, columns[c].values.size());
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (r < columns[c].values.size())
        std::fprintf(f, "%.10g", columns[c].values[r]);
      std::fputc(c + 1 < columns.size() ? ',' : '\n', f);
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace ffw
