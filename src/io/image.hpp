// Image output for reconstructions: binary PGM (8-bit grayscale) of the
// real part / magnitude of a pixel map, auto-scaled. Enough to eyeball
// the Fig. 1/2/13 reconstructions without any external dependency.
#pragma once

#include <string>

#include "common/types.hpp"
#include "grid/grid.hpp"

namespace ffw {

/// Writes real(values) as a PGM, linearly mapped from [lo, hi] to
/// [0, 255]; lo == hi == 0 auto-scales to the data range.
bool write_pgm(const std::string& path, const Grid& grid, ccspan values,
               double lo = 0.0, double hi = 0.0);

/// Writes |values| as a PGM (auto-scaled).
bool write_pgm_magnitude(const std::string& path, const Grid& grid,
                         ccspan values);

}  // namespace ffw
