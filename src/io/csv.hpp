// CSV series writer: each bench emits its figure series as CSV next to
// the console table, so plots can be regenerated externally.
#pragma once

#include <string>
#include <vector>

namespace ffw {

struct CsvColumn {
  std::string name;
  std::vector<double> values;
};

bool write_csv(const std::string& path, const std::vector<CsvColumn>& columns);

}  // namespace ffw
