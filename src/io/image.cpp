#include "io/image.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/check.hpp"

namespace ffw {

namespace {
bool write_pgm_raw(const std::string& path, int nx, const rvec& v, double lo,
                   double hi) {
  if (lo == 0.0 && hi == 0.0) {
    lo = *std::min_element(v.begin(), v.end());
    hi = *std::max_element(v.begin(), v.end());
  }
  if (hi <= lo) hi = lo + 1.0;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  std::fprintf(f, "P5\n%d %d\n255\n", nx, nx);
  std::vector<unsigned char> row(static_cast<std::size_t>(nx));
  // PGM rows are top-to-bottom; our iy grows upward — flip.
  for (int iy = nx - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const double t =
          (v[static_cast<std::size_t>(iy) * nx + ix] - lo) / (hi - lo);
      row[static_cast<std::size_t>(ix)] = static_cast<unsigned char>(
          std::clamp(t, 0.0, 1.0) * 255.0 + 0.5);
    }
    std::fwrite(row.data(), 1, row.size(), f);
  }
  std::fclose(f);
  return true;
}
}  // namespace

bool write_pgm(const std::string& path, const Grid& grid, ccspan values,
               double lo, double hi) {
  FFW_CHECK(values.size() == grid.num_pixels());
  rvec v(values.size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = values[i].real();
  return write_pgm_raw(path, grid.nx(), v, lo, hi);
}

bool write_pgm_magnitude(const std::string& path, const Grid& grid,
                         ccspan values) {
  FFW_CHECK(values.size() == grid.num_pixels());
  rvec v(values.size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = std::abs(values[i]);
  return write_pgm_raw(path, grid.nx(), v, 0.0, 0.0);
}

}  // namespace ffw
