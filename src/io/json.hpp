// Streaming JSON emitter shared by the benchmark result files and the
// obs subsystem's chrome://tracing export (obs/obs.hpp).
//
// Nested objects/arrays with automatic comma and indent handling, so
// callers never hand-format separators. Scopes still open when the
// writer is destroyed (or close()d) are closed for it, so a bench can
// return early and still leave valid JSON behind. Not a general
// serializer — keys are emitted verbatim (no escaping), which the fixed
// bench/trace field names never need.
//
// Doubles are emitted with std::to_chars (shortest round-trip form,
// locale-independent); non-finite values become `null`, since JSON has
// no NaN/Inf literals and a bare `nan` token invalidates the file.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ffw {

class JsonWriter {
 public:
  /// Opens `path` and the top-level object. A failed open degrades to a
  /// warning; every later call is a no-op and the caller keeps running.
  explicit JsonWriter(const std::string& path)
      : path_(path), f_(std::fopen(path.c_str(), "w")) {
    if (f_ == nullptr) {
      std::printf("json: could not open %s for writing\n", path_.c_str());
      return;
    }
    std::fputc('{', f_);
    scopes_.push_back({'}', true});
  }
  ~JsonWriter() { close(); }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool ok() const { return f_ != nullptr; }
  const std::string& path() const { return path_; }

  void begin_object(const std::string& key = {}) { open(key, '{', '}'); }
  void begin_array(const std::string& key = {}) { open(key, '[', ']'); }
  /// Closes the innermost still-open object or array.
  void end() {
    if (f_ == nullptr || scopes_.empty()) return;
    const Scope s = scopes_.back();
    scopes_.pop_back();
    if (!s.first) indent();
    std::fputc(s.closer, f_);
  }

  void field(const std::string& key, const std::string& v) {
    if (prefix(key)) std::fprintf(f_, "\"%s\"", v.c_str());
  }
  void field(const std::string& key, const char* v) {
    field(key, std::string(v));
  }
  void field(const std::string& key, double v) {
    if (!prefix(key)) return;
    if (!std::isfinite(v)) {
      std::fputs("null", f_);
      return;
    }
    // Shortest round-trip decimal form: strtod(emitted) == v exactly.
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    (void)ec;  // 32 chars always suffice for the shortest double form
    std::fwrite(buf, 1, static_cast<std::size_t>(end - buf), f_);
  }
  void field(const std::string& key, int v) {
    if (prefix(key)) std::fprintf(f_, "%d", v);
  }
  void field(const std::string& key, std::int64_t v) {
    if (prefix(key)) {
      std::fprintf(f_, "%lld", static_cast<long long>(v));
    }
  }
  void field(const std::string& key, std::uint64_t v) {
    if (prefix(key)) {
      std::fprintf(f_, "%llu", static_cast<unsigned long long>(v));
    }
  }
  void field(const std::string& key, bool v) {
    if (prefix(key)) std::fputs(v ? "true" : "false", f_);
  }

  /// Closes all open scopes and the file, then reports the path.
  void close() {
    if (f_ == nullptr) return;
    while (!scopes_.empty()) end();
    std::fputc('\n', f_);
    std::fclose(f_);
    f_ = nullptr;
    std::printf("json: %s\n", path_.c_str());
  }

 private:
  struct Scope {
    char closer;
    bool first;  // no element written yet -> next one skips the comma
  };

  void indent() {
    std::fputc('\n', f_);
    for (std::size_t i = 0; i < scopes_.size(); ++i) std::fputs("  ", f_);
  }
  /// Comma/newline/key bookkeeping shared by fields and scope openers.
  bool prefix(const std::string& key) {
    if (f_ == nullptr) return false;
    if (!scopes_.empty()) {
      if (!scopes_.back().first) std::fputc(',', f_);
      scopes_.back().first = false;
    }
    indent();
    if (!key.empty()) std::fprintf(f_, "\"%s\": ", key.c_str());
    return true;
  }
  void open(const std::string& key, char opener, char closer) {
    if (!prefix(key)) return;
    std::fputc(opener, f_);
    scopes_.push_back({closer, true});
  }

  std::string path_;
  std::FILE* f_;
  std::vector<Scope> scopes_;
};

}  // namespace ffw
