#include "fft/fft2.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <list>
#include <mutex>
#include <numbers>
#include <unordered_map>

#include "common/check.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"

namespace ffw {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Branch-free complex multiply (std::complex operator* calls the
/// __muldc3 NaN-recovery routine at these optimization settings).
template <typename T>
inline std::complex<T> cmul(std::complex<T> a, std::complex<T> b) {
  return {a.real() * b.real() - a.imag() * b.imag(),
          a.real() * b.imag() + a.imag() * b.real()};
}

/// Twiddle/chirp phases are always evaluated in double and narrowed to
/// the plan's storage scalar, so fp32 plans carry full-accuracy tables.
template <typename T>
std::complex<T> unit_phase(double ang) {
  return {static_cast<T>(std::cos(ang)), static_cast<T>(std::sin(ang))};
}

// Hand-vectorized butterflies via GCC/Clang vector extensions. The
// interleaved re/im layout defeats the autovectorizer's cost model (it
// settles for 16-byte vectors plus scalar shuffles); spelling out the
// full-width lanes and the re/im swizzle roughly doubles the butterfly
// throughput. 64-byte lanes on AVX-512 hardware, 32-byte otherwise (on
// non-x86 the compiler lowers the fixed-width vectors to whatever the
// target offers). Scalar tails keep every width correct; the
// aligned(sizeof(T)) attribute makes each access legal at
// complex-element alignment. The only runtime shuffle is the in-lane
// re/im swap -- twiddles come pre-expanded from the plan tables.
#if defined(__GNUC__) || defined(__clang__)
#define FFW_FFT_SIMD 1
#if defined(__AVX512F__)
#define FFW_FFT_VEC_BYTES 64
#else
#define FFW_FFT_VEC_BYTES 32
#endif

template <typename T>
struct Simd;

template <>
struct Simd<double> {
  typedef double V __attribute__((vector_size(FFW_FFT_VEC_BYTES), aligned(8)));
  typedef long long M __attribute__((vector_size(FFW_FFT_VEC_BYTES)));
  static constexpr std::size_t kScalars = FFW_FFT_VEC_BYTES / sizeof(double);
  static V load(const double* p) { return *reinterpret_cast<const V*>(p); }
  static void store(double* p, V v) { *reinterpret_cast<V*>(p) = v; }
  // [re0, im0, re1, im1, ...] -> [im0, re0, im1, re1, ...]
  static V swap_pairs(V v) {
#if defined(__clang__) && FFW_FFT_VEC_BYTES == 64
    return __builtin_shufflevector(v, v, 1, 0, 3, 2, 5, 4, 7, 6);
#elif defined(__clang__)
    return __builtin_shufflevector(v, v, 1, 0, 3, 2);
#elif FFW_FFT_VEC_BYTES == 64
    return __builtin_shuffle(v, M{1, 0, 3, 2, 5, 4, 7, 6});
#else
    return __builtin_shuffle(v, M{1, 0, 3, 2});
#endif
  }
  static V broadcast(double a) { return a - V{}; }
  static V alt(double a) {
    V v{};
    for (std::size_t i = 0; i < kScalars; i += 2) {
      v[i] = -a;
      v[i + 1] = a;
    }
    return v;
  }
};

template <>
struct Simd<float> {
  typedef float V __attribute__((vector_size(FFW_FFT_VEC_BYTES), aligned(4)));
  typedef int M __attribute__((vector_size(FFW_FFT_VEC_BYTES)));
  static constexpr std::size_t kScalars = FFW_FFT_VEC_BYTES / sizeof(float);
  static V load(const float* p) { return *reinterpret_cast<const V*>(p); }
  static void store(float* p, V v) { *reinterpret_cast<V*>(p) = v; }
  static V swap_pairs(V v) {
#if defined(__clang__) && FFW_FFT_VEC_BYTES == 64
    return __builtin_shufflevector(v, v, 1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10,
                                   13, 12, 15, 14);
#elif defined(__clang__)
    return __builtin_shufflevector(v, v, 1, 0, 3, 2, 5, 4, 7, 6);
#elif FFW_FFT_VEC_BYTES == 64
    return __builtin_shuffle(v, M{1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12,
                                  15, 14});
#else
    return __builtin_shuffle(v, M{1, 0, 3, 2, 5, 4, 7, 6});
#endif
  }
  static V broadcast(float a) { return a - V{}; }
  static V alt(float a) {
    V v{};
    for (std::size_t i = 0; i < kScalars; i += 2) {
      v[i] = -a;
      v[i + 1] = a;
    }
    return v;
  }
};
#endif  // FFW_FFT_SIMD

/// (a, b) <- (a + w b, a - w b) over len2 interleaved scalars with one
/// constant twiddle w = wr + i wi: the column-pass butterfly, where a
/// and b are contiguous blocks of `width` complex values.
template <typename T>
inline void line_butterfly(T* a, T* b, T wr, T wi, std::size_t len2) {
  std::size_t c = 0;
#if FFW_FFT_SIMD
  using S = Simd<T>;
  const typename S::V vwr = S::broadcast(wr);
  const typename S::V vwi = S::alt(wi);
  for (; c + S::kScalars <= len2; c += S::kScalars) {
    const typename S::V vb = S::load(b + c);
    const typename S::V v = vb * vwr + S::swap_pairs(vb) * vwi;
    const typename S::V vu = S::load(a + c);
    S::store(a + c, vu + v);
    S::store(b + c, vu - v);
  }
#endif
  for (; c < len2; c += 2) {
    const T br = b[c], bi = b[c + 1];
    const T vr = br * wr - bi * wi;
    const T vi = br * wi + bi * wr;
    const T ur = a[c], ui = a[c + 1];
    a[c] = ur + vr;
    a[c + 1] = ui + vi;
    b[c] = ur - vr;
    b[c + 1] = ui - vi;
  }
}

/// Two fused radix-2 stages (one radix-4 step) across four lines of
/// `len2` interleaved scalars: stage 1 pairs (a,b) and (c,d) with the
/// shared twiddle w1, stage 2 pairs the results across (a,c) with w2a
/// and (b,d) with w2b. One sweep over the four lines instead of two —
/// the line traffic, not the arithmetic, bounds the column pass.
template <typename T>
inline void line_butterfly4(T* a, T* b, T* c, T* d, std::complex<T> w1,
                            std::complex<T> w2a, std::complex<T> w2b,
                            std::size_t len2) {
  std::size_t k = 0;
#if FFW_FFT_SIMD
  using S = Simd<T>;
  const typename S::V w1r = S::broadcast(w1.real()), w1i = S::alt(w1.imag());
  const typename S::V w2ar = S::broadcast(w2a.real()),
                      w2ai = S::alt(w2a.imag());
  const typename S::V w2br = S::broadcast(w2b.real()),
                      w2bi = S::alt(w2b.imag());
  for (; k + S::kScalars <= len2; k += S::kScalars) {
    const typename S::V vb = S::load(b + k);
    const typename S::V vd = S::load(d + k);
    const typename S::V tb = vb * w1r + S::swap_pairs(vb) * w1i;
    const typename S::V td = vd * w1r + S::swap_pairs(vd) * w1i;
    const typename S::V va = S::load(a + k);
    const typename S::V vc = S::load(c + k);
    const typename S::V ua = va + tb, ub = va - tb;
    const typename S::V uc = vc + td, ud = vc - td;
    const typename S::V p = uc * w2ar + S::swap_pairs(uc) * w2ai;
    const typename S::V q = ud * w2br + S::swap_pairs(ud) * w2bi;
    S::store(a + k, ua + p);
    S::store(c + k, ua - p);
    S::store(b + k, ub + q);
    S::store(d + k, ub - q);
  }
#endif
  for (; k < len2; k += 2) {
    const T br = b[k], bi = b[k + 1], dr = d[k], di = d[k + 1];
    const T tbr = br * w1.real() - bi * w1.imag();
    const T tbi = br * w1.imag() + bi * w1.real();
    const T tdr = dr * w1.real() - di * w1.imag();
    const T tdi = dr * w1.imag() + di * w1.real();
    const T ar = a[k], ai = a[k + 1], cr = c[k], ci = c[k + 1];
    const T uar = ar + tbr, uai = ai + tbi, ubr = ar - tbr, ubi = ai - tbi;
    const T ucr = cr + tdr, uci = ci + tdi, udr = cr - tdr, udi = ci - tdi;
    const T pr = ucr * w2a.real() - uci * w2a.imag();
    const T pi = ucr * w2a.imag() + uci * w2a.real();
    const T qr = udr * w2b.real() - udi * w2b.imag();
    const T qi = udr * w2b.imag() + udi * w2b.real();
    a[k] = uar + pr;
    a[k + 1] = uai + pi;
    c[k] = uar - pr;
    c[k + 1] = uai - pi;
    b[k] = ubr + qr;
    b[k + 1] = ubi + qi;
    d[k] = ubr - qr;
    d[k + 1] = ubi - qi;
  }
}

/// One radix-2 stage block for the 1-D transform: butterflies across
/// `half` consecutive complex elements with per-element twiddles, fed
/// from the plan's pre-expanded tables (twa[2j] = twa[2j+1] = Re w_j,
/// twb[2j] = -Im w_j, twb[2j+1] = +Im w_j) so the vector body is pure
/// element-wise loads and FMAs plus one in-lane re/im swap.
template <typename T>
inline void radix2_stage(T* lo, T* hi, const T* twa, const T* twb,
                         std::size_t half) {
  std::size_t j = 0;
#if FFW_FFT_SIMD
  using S = Simd<T>;
  constexpr std::size_t kC = S::kScalars / 2;  // complex values per lane
  for (; j + kC <= half; j += kC) {
    const typename S::V wa = S::load(twa + 2 * j);
    const typename S::V wb = S::load(twb + 2 * j);
    const typename S::V vb = S::load(hi + 2 * j);
    const typename S::V v = vb * wa + S::swap_pairs(vb) * wb;
    const typename S::V vu = S::load(lo + 2 * j);
    S::store(lo + 2 * j, vu + v);
    S::store(hi + 2 * j, vu - v);
  }
#endif
  for (; j < half; ++j) {
    const T wr = twa[2 * j], wi = twb[2 * j + 1];
    const T br = hi[2 * j], bi = hi[2 * j + 1];
    const T vr = br * wr - bi * wi;
    const T vi = br * wi + bi * wr;
    const T ur = lo[2 * j], ui = lo[2 * j + 1];
    lo[2 * j] = ur + vr;
    lo[2 * j + 1] = ui + vi;
    hi[2 * j] = ur - vr;
    hi[2 * j + 1] = ui - vi;
  }
}

}  // namespace

template <typename T>
Fft1Plan<T>::Fft1Plan(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  FFW_CHECK_MSG(n >= 1, "Fft1Plan length must be positive");
  if (n_ <= 1) return;
  if (pow2_) {
    bitrev_.resize(n_);
    for (std::size_t i = 1, j = 0; i < n_; ++i) {
      std::size_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[i] = static_cast<std::uint32_t>(j);
    }
    // Stage-concatenated twiddles: len = 2, 4, ..., n contributes len/2
    // entries w_j = e^{sign 2 pi i j / len}; n - 1 entries in total.
    tw_fwd_.reserve(n_ - 1);
    tw_inv_.reserve(n_ - 1);
    for (std::size_t len = 2; len <= n_; len <<= 1) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const double ang = 2.0 * std::numbers::pi * static_cast<double>(j) /
                           static_cast<double>(len);
        tw_fwd_.push_back(unit_phase<T>(-ang));
        tw_inv_.push_back(unit_phase<T>(ang));
      }
    }
    // Pre-expanded copies for the vectorized butterfly (see
    // radix2_stage): each complex twiddle becomes a duplicated-real pair
    // and a sign-alternated imaginary pair.
    auto expand = [](const std::vector<std::complex<T>>& tw,
                     std::vector<T>& a, std::vector<T>& b) {
      a.resize(2 * tw.size());
      b.resize(2 * tw.size());
      for (std::size_t j = 0; j < tw.size(); ++j) {
        a[2 * j] = a[2 * j + 1] = tw[j].real();
        b[2 * j] = -tw[j].imag();
        b[2 * j + 1] = tw[j].imag();
      }
    };
    expand(tw_fwd_, twa_fwd_, twb_fwd_);
    expand(tw_inv_, twa_inv_, twb_inv_);
    return;
  }
  // Bluestein: DFT of length n as a circular convolution of length
  // m = bit_ceil(2n - 1) with the chirp c_k = e^{sign i pi k^2 / n}.
  const std::size_t m = std::bit_ceil(2 * n_ - 1);
  inner_ = std::make_unique<Fft1Plan<T>>(m);
  chirp_fwd_.resize(n_);
  chirp_inv_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // k^2 mod 2n keeps the phase argument small for large n.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double ang = std::numbers::pi * static_cast<double>(k2) /
                       static_cast<double>(n_);
    chirp_fwd_[k] = unit_phase<T>(-ang);
    chirp_inv_[k] = unit_phase<T>(ang);
  }
  auto build_bhat = [&](const std::vector<std::complex<T>>& chirp) {
    std::vector<std::complex<T>> b(m, std::complex<T>{});
    b[0] = std::conj(chirp[0]);
    for (std::size_t k = 1; k < n_; ++k) b[k] = b[m - k] = std::conj(chirp[k]);
    inner_->forward(std::span<std::complex<T>>{b});
    return b;
  };
  bhat_fwd_ = build_bhat(chirp_fwd_);
  bhat_inv_ = build_bhat(chirp_inv_);
}

template <typename T>
void Fft1Plan<T>::pow2_transform(std::span<std::complex<T>> x,
                                 bool fwd) const {
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  // Butterflies in explicit real arithmetic: std::complex operator*
  // otherwise lowers to the __muldc3 runtime call (NaN-recovery
  // semantics) — an order-of-magnitude tax in the innermost loop.
  T* d = reinterpret_cast<T*>(x.data());
  const T* twa = (fwd ? twa_fwd_ : twa_inv_).data();
  const T* twb = (fwd ? twb_fwd_ : twb_inv_).data();
  if (n >= 2) {
    // len == 2 stage: the lone twiddle is +1, pure add/sub.
    for (std::size_t i = 0; i < 2 * n; i += 4) {
      const T ar = d[i], ai = d[i + 1], br = d[i + 2], bi = d[i + 3];
      d[i] = ar + br;
      d[i + 1] = ai + bi;
      d[i + 2] = ar - br;
      d[i + 3] = ai - bi;
    }
    twa += 2;
    twb += 2;
  }
  for (std::size_t len = 4; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    for (std::size_t i = 0; i < n; i += len) {
      T* lo = d + 2 * i;
      radix2_stage(lo, lo + 2 * half, twa, twb, half);
    }
    twa += 2 * half;
    twb += 2 * half;
  }
}

template <typename T>
void Fft1Plan<T>::transform_lines(std::complex<T>* data, std::size_t pitch,
                                  std::size_t width, bool fwd) const {
  FFW_DCHECK(pow2_ || n_ <= 1);
  if (n_ > 1) {
    for (std::size_t i = 1; i < n_; ++i) {
      const std::size_t j = bitrev_[i];
      if (i < j) {
        std::swap_ranges(data + i * pitch, data + i * pitch + width,
                         data + j * pitch);
      }
    }
    // Stage twiddles are concatenated in tw_*: stage `len` starts at
    // offset len/2 - 1.
    const std::complex<T>* twbase = (fwd ? tw_fwd_ : tw_inv_).data();
    std::size_t len = 2;
    // Paired stages: each sweep applies two radix-2 stages (len and
    // 2 len) to four lines at once, halving the pass count over the
    // panel.
    for (; 2 * len <= n_; len <<= 2) {
      const std::size_t h = len >> 1;
      const std::complex<T>* tw1 = twbase + h - 1;
      const std::complex<T>* tw2 = twbase + len - 1;
      for (std::size_t i = 0; i < n_; i += 2 * len) {
        for (std::size_t j = 0; j < h; ++j) {
          T* a = reinterpret_cast<T*>(data + (i + j) * pitch);
          T* b = reinterpret_cast<T*>(data + (i + j + h) * pitch);
          T* c = reinterpret_cast<T*>(data + (i + j + len) * pitch);
          T* d = reinterpret_cast<T*>(data + (i + j + len + h) * pitch);
          line_butterfly4(a, b, c, d, tw1[j], tw2[j], tw2[j + h], 2 * width);
        }
      }
    }
    // Odd log2(n): one unpaired final stage.
    if (len <= n_) {
      const std::size_t half = len >> 1;
      const std::complex<T>* tw = twbase + half - 1;
      for (std::size_t i = 0; i < n_; i += len) {
        for (std::size_t j = 0; j < half; ++j) {
          T* a = reinterpret_cast<T*>(data + (i + j) * pitch);
          T* b = reinterpret_cast<T*>(data + (i + j + half) * pitch);
          if (j == 0) {  // identity twiddle
            for (std::size_t c = 0; c < 2 * width; ++c) {
              const T u = a[c], v = b[c];
              a[c] = u + v;
              b[c] = u - v;
            }
          } else {
            line_butterfly(a, b, tw[j].real(), tw[j].imag(), 2 * width);
          }
        }
      }
    }
  }
  if (!fwd) {
    const T inv = static_cast<T>(1.0 / static_cast<double>(n_));
    for (std::size_t r = 0; r < n_; ++r) {
      T* p = reinterpret_cast<T*>(data + r * pitch);
      for (std::size_t c = 0; c < 2 * width; ++c) p[c] *= inv;
    }
  }
}

template <typename T>
void Fft1Plan<T>::bluestein_transform(std::span<std::complex<T>> x,
                                      bool fwd) const {
  const std::size_t n = n_;
  const std::size_t m = inner_->size();
  const auto& chirp = fwd ? chirp_fwd_ : chirp_inv_;
  const auto& bhat = fwd ? bhat_fwd_ : bhat_inv_;
  std::vector<std::complex<T>> a(m, std::complex<T>{});
  for (std::size_t k = 0; k < n; ++k) a[k] = cmul(x[k], chirp[k]);
  inner_->forward(std::span<std::complex<T>>{a});
  for (std::size_t k = 0; k < m; ++k) a[k] = cmul(a[k], bhat[k]);
  inner_->inverse(std::span<std::complex<T>>{a});  // includes the 1/m
  for (std::size_t k = 0; k < n; ++k) x[k] = cmul(a[k], chirp[k]);
}

template <typename T>
void Fft1Plan<T>::forward(std::span<std::complex<T>> x) const {
  FFW_DCHECK(x.size() == n_);
  if (n_ <= 1) return;
  if (pow2_) {
    pow2_transform(x, /*fwd=*/true);
  } else {
    bluestein_transform(x, /*fwd=*/true);
  }
}

template <typename T>
void Fft1Plan<T>::inverse(std::span<std::complex<T>> x) const {
  FFW_DCHECK(x.size() == n_);
  if (n_ <= 1) return;
  if (pow2_) {
    pow2_transform(x, /*fwd=*/false);
  } else {
    bluestein_transform(x, /*fwd=*/false);
  }
  const T inv = static_cast<T>(1.0 / static_cast<double>(n_));
  for (auto& v : x) v *= inv;
}

template <typename T>
Fft2Plan<T>::Fft2Plan(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_plan_(cols), col_plan_(rows) {
  FFW_CHECK_MSG(rows >= 1 && cols >= 1, "Fft2Plan needs positive extents");
}

template <typename T>
void Fft2Plan<T>::row_pass(std::complex<T>* base, std::size_t count,
                           std::size_t nrows, bool fwd) const {
  // Every (panel, row) line is contiguous.
  parallel_for(0, count * nrows, [&](std::size_t i) {
    const std::size_t p = i / nrows, r = i % nrows;
    std::span<std::complex<T>> row{base + p * size() + r * cols_, cols_};
    if (fwd) {
      row_plan_.forward(row);
    } else {
      row_plan_.inverse(row);  // contributes the 1/cols factor
    }
  });
}

template <typename T>
void Fft2Plan<T>::panel_rows(std::complex<T>* panel, std::size_t nrows,
                             bool fwd) const {
  for (std::size_t r = 0; r < nrows; ++r) {
    std::span<std::complex<T>> row{panel + r * cols_, cols_};
    if (fwd) {
      row_plan_.forward(row);
    } else {
      row_plan_.inverse(row);
    }
  }
}

template <typename T>
void Fft2Plan<T>::col_pass(std::complex<T>* base, std::size_t count,
                           bool fwd) const {
  if (col_plan_.radix2() || rows_ == 1) {
    // Column butterflies run along full contiguous rows: stride-1 inner
    // loops, no gather/scatter, and — critically — no cache-set
    // aliasing. (Narrow column windows at the panels' power-of-two row
    // pitch land every line in the same few L1 sets and thrash; whole
    // rows stream.) Panels parallelise across the batch.
    parallel_for(0, count, [&](std::size_t p) {
      col_plan_.transform_lines(base + p * size(), cols_, cols_, fwd);
    });
    return;
  }
  // Bluestein row counts: gather each (panel, column) into a contiguous
  // scratch line, transform, scatter back.
  parallel_for(0, count * cols_, [&](std::size_t i) {
    thread_local std::vector<std::complex<T>> line;
    line.resize(rows_);
    const std::size_t p = i / cols_;
    const std::size_t c = i % cols_;
    std::complex<T>* panel = base + p * size();
    for (std::size_t r = 0; r < rows_; ++r) line[r] = panel[r * cols_ + c];
    if (fwd) {
      col_plan_.forward(std::span<std::complex<T>>{line});
    } else {
      col_plan_.inverse(std::span<std::complex<T>>{line});  // 1/rows factor
    }
    for (std::size_t r = 0; r < rows_; ++r) panel[r * cols_ + c] = line[r];
  });
}

template <typename T>
void Fft2Plan<T>::forward_top(std::span<std::complex<T>> panels,
                              std::size_t count,
                              std::size_t nonzero_rows) const {
  FFW_CHECK(panels.size() == count * size());
  FFW_CHECK(nonzero_rows <= rows_);
  if (col_plan_.radix2() || rows_ == 1) {
    // Finish each panel (rows, then columns) before touching the next:
    // a multi-panel batch otherwise evicts panel 0 from L2 between its
    // row and column passes and the column pass re-streams from L3.
    parallel_for(0, count, [&](std::size_t p) {
      std::complex<T>* panel = panels.data() + p * size();
      panel_rows(panel, nonzero_rows, /*fwd=*/true);
      col_plan_.transform_lines(panel, cols_, cols_, /*fwd=*/true);
    });
    return;
  }
  row_pass(panels.data(), count, nonzero_rows, /*fwd=*/true);
  col_pass(panels.data(), count, /*fwd=*/true);
}

template <typename T>
void Fft2Plan<T>::inverse_top(std::span<std::complex<T>> panels,
                              std::size_t count,
                              std::size_t needed_rows) const {
  FFW_CHECK(panels.size() == count * size());
  FFW_CHECK(needed_rows <= rows_);
  // Row and column transforms commute; columns first so the row pass
  // can stop at the rows the caller will read.
  if (col_plan_.radix2() || rows_ == 1) {
    parallel_for(0, count, [&](std::size_t p) {
      std::complex<T>* panel = panels.data() + p * size();
      col_plan_.transform_lines(panel, cols_, cols_, /*fwd=*/false);
      panel_rows(panel, needed_rows, /*fwd=*/false);
    });
    return;
  }
  col_pass(panels.data(), count, /*fwd=*/false);
  row_pass(panels.data(), count, needed_rows, /*fwd=*/false);
}

template <typename T>
void Fft2Plan<T>::forward(std::span<std::complex<T>> panels,
                          std::size_t count) const {
  forward_top(panels, count, rows_);
}

template <typename T>
void Fft2Plan<T>::inverse(std::span<std::complex<T>> panels,
                          std::size_t count) const {
  inverse_top(panels, count, rows_);
}

template class Fft1Plan<double>;
template class Fft1Plan<float>;
template class Fft2Plan<double>;
template class Fft2Plan<float>;

namespace {

/// LRU-bounded per-length plan cache. The shared_ptr hand-out keeps an
/// evicted plan alive until its last in-flight execution finishes.
class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  std::shared_ptr<const Fft1Plan<double>> get(std::size_t n) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = index_.find(n);
      if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        obs::add(obs::Counter::kFftPlanHits, 1);
        return it->second->second;
      }
    }
    // Build outside the lock: planning a large Bluestein length must not
    // block concurrent transforms of other lengths.
    auto plan = std::make_shared<const Fft1Plan<double>>(n);
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(n);
    if (it != index_.end()) {  // raced with another builder: reuse theirs
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      obs::add(obs::Counter::kFftPlanHits, 1);
      return it->second->second;
    }
    ++misses_;
    obs::add(obs::Counter::kFftPlanMisses, 1);
    lru_.emplace_front(n, std::move(plan));
    index_[n] = lru_.begin();
    shrink_locked();
    return lru_.front().second;
  }

  FftPlanCacheStats stats() {
    std::lock_guard<std::mutex> lk(mu_);
    return {hits_, misses_, lru_.size(), capacity_};
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    lru_.clear();
    index_.clear();
    hits_ = misses_ = 0;
  }

  std::size_t set_capacity(std::size_t entries) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::size_t prev = capacity_;
    capacity_ = std::max<std::size_t>(1, entries);
    shrink_locked();
    return prev;
  }

 private:
  void shrink_locked() {
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  using Entry = std::pair<std::size_t, std::shared_ptr<const Fft1Plan<double>>>;
  std::mutex mu_;
  std::list<Entry> lru_;
  std::unordered_map<std::size_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0, misses_ = 0;
  std::size_t capacity_ = kDefaultCapacity;
};

PlanCache& plan_cache() {
  static PlanCache* cache = new PlanCache;  // leaked: outlives rank threads
  return *cache;
}

}  // namespace

std::shared_ptr<const Fft1Plan<double>> fft_plan(std::size_t n) {
  return plan_cache().get(n);
}

FftPlanCacheStats fft_plan_cache_stats() { return plan_cache().stats(); }

void fft_plan_cache_clear() { plan_cache().clear(); }

std::size_t fft_plan_cache_set_capacity(std::size_t entries) {
  return plan_cache().set_capacity(entries);
}

}  // namespace ffw
