// Complex FFT: iterative radix-2 Cooley-Tukey for power-of-two sizes and
// Bluestein's chirp-z algorithm for arbitrary sizes.
//
// The MLFMA field samples live on uniform angular grids whose sizes are
// not powers of two (Q = 2L+2 for truncation L), so the general-size
// transform matters. Used for: spectral verification of the band-limited
// interpolation operators, exact trigonometric resampling references in
// tests, and phantom/image utilities.
//
// These free functions execute through the shared per-length plan cache
// (fft/fft2.hpp): twiddle factors and Bluestein chirp tables are built
// once per length instead of on every call. Planned 1-D/2-D transforms
// for hot paths (the CBS forward backend) live in fft/fft2.hpp.
#pragma once

#include "common/types.hpp"

namespace ffw {

/// In-place forward DFT: X_k = sum_n x_n e^{-2 pi i n k / N}.
void fft(cspan x);

/// In-place inverse DFT (with 1/N normalisation).
void ifft(cspan x);

/// Out-of-place forward DFT of arbitrary length (reference O(N^2) path
/// available via `dft_reference` for testing).
cvec fft_copy(ccspan x);

/// O(N^2) direct DFT used as the oracle in tests.
cvec dft_reference(ccspan x);

/// Exact resampling of a band-limited periodic sequence from `x.size()`
/// to `m` uniform samples via zero-padding in the spectral domain.
/// Requires the signal bandwidth to fit in min(n, m) bins.
cvec spectral_resample(ccspan x, std::size_t m);

}  // namespace ffw
