#include "fft/fft.hpp"

#include <cmath>

#include "common/check.hpp"
#include "fft/fft2.hpp"

namespace ffw {

void fft(cspan x) {
  if (x.size() <= 1) return;
  fft_plan(x.size())->forward(x);
}

void ifft(cspan x) {
  if (x.size() <= 1) return;
  fft_plan(x.size())->inverse(x);
}

cvec fft_copy(ccspan x) {
  cvec out(x.begin(), x.end());
  fft(out);
  return out;
}

cvec dft_reference(ccspan x) {
  const std::size_t n = x.size();
  cvec out(n, cplx{});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * pi * static_cast<double>(k * j % n) /
                         static_cast<double>(n);
      out[k] += x[j] * cplx{std::cos(ang), std::sin(ang)};
    }
  }
  return out;
}

cvec spectral_resample(ccspan x, std::size_t m) {
  const std::size_t n = x.size();
  FFW_CHECK(n >= 1 && m >= 1);
  cvec spec(x.begin(), x.end());
  fft(spec);
  cvec out_spec(m, cplx{});
  // Copy spectral bins keeping the lowest frequencies of both grids.
  const std::size_t half = std::min(n, m) / 2;
  for (std::size_t k = 0; k <= half && k < std::min(n, m); ++k) {
    out_spec[k] = spec[k];
  }
  for (std::size_t k = 1; k < std::min(n, m) - half; ++k) {
    out_spec[m - k] = spec[n - k];
  }
  // Nyquist bin split when downsampling from even n is ignored: callers
  // must keep the true bandwidth strictly below min(n, m)/2.
  ifft(out_spec);
  const double scale = static_cast<double>(m) / static_cast<double>(n);
  for (cplx& v : out_spec) v *= scale;
  return out_spec;
}

}  // namespace ffw
