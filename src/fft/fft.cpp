#include "fft/fft.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace ffw {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Radix-2 DIT, in place; `sign` = -1 forward, +1 inverse (no scaling).
void fft_pow2(cspan x, int sign) {
  const std::size_t n = x.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * pi / static_cast<double>(len);
    const cplx wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      cplx w{1.0, 0.0};
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cplx u = x[i + j];
        const cplx v = x[i + j + len / 2] * w;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Bluestein: DFT of arbitrary length via a circular convolution of
/// length m = next_pow2(2n-1).
void fft_bluestein(cspan x, int sign) {
  const std::size_t n = x.size();
  const std::size_t m = std::bit_ceil(2 * n - 1);
  cvec a(m, cplx{}), b(m, cplx{});
  // chirp c_k = e^{sign * i pi k^2 / n}
  cvec chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the phase argument small for large n.
    const std::size_t k2 = (k * k) % (2 * n);
    const double ang = sign * pi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = {std::cos(ang), std::sin(ang)};
  }
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }
  fft_pow2(a, -1);
  fft_pow2(b, -1);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * inv_m * chirp[k];
}

void transform(cspan x, int sign) {
  if (x.size() <= 1) return;
  if (is_pow2(x.size())) {
    fft_pow2(x, sign);
  } else {
    fft_bluestein(x, sign);
  }
}

}  // namespace

void fft(cspan x) { transform(x, -1); }

void ifft(cspan x) {
  transform(x, +1);
  const double inv = 1.0 / static_cast<double>(x.size());
  for (cplx& v : x) v *= inv;
}

cvec fft_copy(ccspan x) {
  cvec out(x.begin(), x.end());
  fft(out);
  return out;
}

cvec dft_reference(ccspan x) {
  const std::size_t n = x.size();
  cvec out(n, cplx{});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * pi * static_cast<double>(k * j % n) /
                         static_cast<double>(n);
      out[k] += x[j] * cplx{std::cos(ang), std::sin(ang)};
    }
  }
  return out;
}

cvec spectral_resample(ccspan x, std::size_t m) {
  const std::size_t n = x.size();
  FFW_CHECK(n >= 1 && m >= 1);
  cvec spec(x.begin(), x.end());
  fft(spec);
  cvec out_spec(m, cplx{});
  // Copy spectral bins keeping the lowest frequencies of both grids.
  const std::size_t half = std::min(n, m) / 2;
  for (std::size_t k = 0; k <= half && k < std::min(n, m); ++k) {
    out_spec[k] = spec[k];
  }
  for (std::size_t k = 1; k < std::min(n, m) - half; ++k) {
    out_spec[m - k] = spec[n - k];
  }
  // Nyquist bin split when downsampling from even n is ignored: callers
  // must keep the true bandwidth strictly below min(n, m)/2.
  ifft(out_spec);
  const double scale = static_cast<double>(m) / static_cast<double>(n);
  for (cplx& v : out_spec) v *= scale;
  return out_spec;
}

}  // namespace ffw
