// Planned FFT execution: per-length 1-D plans (radix-2 twiddle tables
// for powers of two, Bluestein chirp + spectral tables otherwise) and a
// row-column 2-D plan with batched execution over multi-RHS panels.
//
// The legacy free functions in fft/fft.hpp recomputed twiddle factors
// and the Bluestein chirp on every call; plans hoist that setup so the
// hot paths (the CBS backend's padded Green's-function convolutions,
// the MLFMA spectral verification transforms) run table-driven. Plans
// are immutable after construction and safe to execute from many
// threads concurrently; the 2-D batch entry points parallelise over
// (panel, row) and (panel, column) with the library thread pool.
//
// Scalar type T is the real storage type: double for the reference
// pipeline, float for the fp32 spectra of Precision::kMixed backends.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace ffw {

template <typename T>
class Fft1Plan {
 public:
  /// Plans an in-place transform of length n >= 1. Powers of two get
  /// stage-concatenated twiddle tables and a bit-reversal index table;
  /// other lengths get Bluestein chirp tables plus the spectra of the
  /// chirp-convolution kernels for both directions, precomputed through
  /// an inner power-of-two plan of length m = bit_ceil(2n - 1).
  explicit Fft1Plan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT X_k = sum_n x_n e^{-2 pi i n k / N} (no
  /// scaling). x.size() must equal size().
  void forward(std::span<std::complex<T>> x) const;

  /// In-place inverse DFT with 1/N normalisation.
  void inverse(std::span<std::complex<T>> x) const;

  /// Power-of-two length (radix-2 table path)?
  bool radix2() const { return pow2_; }

  /// Vectorised strided transform (radix-2 lengths only): element k of
  /// the length-size() DFT is the contiguous block of `width` complex
  /// values at data + k * pitch, and the butterflies run stride-1
  /// across the block. This is the cache-friendly column pass of the
  /// 2-D plan: no per-column gather/scatter, and the inner loops
  /// auto-vectorise. Inverse applies the 1/N normalisation.
  void transform_lines(std::complex<T>* data, std::size_t pitch,
                       std::size_t width, bool fwd) const;

 private:
  void pow2_transform(std::span<std::complex<T>> x, bool fwd) const;
  void bluestein_transform(std::span<std::complex<T>> x, bool fwd) const;

  std::size_t n_ = 0;
  bool pow2_ = false;
  // Power-of-two tables.
  std::vector<std::uint32_t> bitrev_;
  std::vector<std::complex<T>> tw_fwd_, tw_inv_;  // stages len=2,4,...,n
  // The same twiddles pre-expanded for the vectorized butterfly:
  // twa[2j] = twa[2j+1] = Re w_j and twb[2j] = -Im w_j, twb[2j+1] =
  // +Im w_j, so v = b .* twa + swap_re_im(b) .* twb is the complex
  // product b * w with plain element-wise lane arithmetic — no runtime
  // twiddle shuffles.
  std::vector<T> twa_fwd_, twb_fwd_, twa_inv_, twb_inv_;
  // Bluestein tables (empty for power-of-two lengths).
  std::unique_ptr<Fft1Plan<T>> inner_;            // pow2 plan, length m
  std::vector<std::complex<T>> chirp_fwd_, chirp_inv_;  // e^{∓ i pi k^2 / n}
  std::vector<std::complex<T>> bhat_fwd_, bhat_inv_;    // FFT_m of b = conj(chirp)
};

/// Row-column 2-D transform over row-major rows x cols panels, with
/// batched execution: `count` panels stored contiguously are transformed
/// in one call, sharing the two 1-D plans and parallelising across the
/// batch. The column pass gathers each column into a per-thread
/// contiguous scratch line, transforms it, and scatters it back.
template <typename T>
class Fft2Plan {
 public:
  Fft2Plan(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Elements per panel.
  std::size_t size() const { return rows_ * cols_; }

  /// In-place forward DFT of `count` contiguous panels (no scaling).
  /// panels.size() must equal count * size().
  void forward(std::span<std::complex<T>> panels, std::size_t count = 1) const;

  /// In-place inverse DFT with 1/(rows*cols) normalisation.
  void inverse(std::span<std::complex<T>> panels, std::size_t count = 1) const;

  /// Pruned forward transform for zero-padded panels: rows at index >=
  /// nonzero_rows are promised identically zero, so their (zero -> zero)
  /// row FFTs are skipped. The result equals forward() on the full
  /// panel. The padded-convolution backends embed an nx-row field in a
  /// 2nx-row panel, halving the row-pass work.
  void forward_top(std::span<std::complex<T>> panels, std::size_t count,
                   std::size_t nonzero_rows) const;

  /// Pruned inverse: only the first needed_rows rows of each output
  /// panel are computed (the caller crops there); rows beyond hold
  /// unspecified values afterwards. Column pass still covers the full
  /// panel, rows get the 1/(rows*cols) normalisation.
  void inverse_top(std::span<std::complex<T>> panels, std::size_t count,
                   std::size_t needed_rows) const;

 private:
  void row_pass(std::complex<T>* base, std::size_t count, std::size_t nrows,
                bool fwd) const;
  void col_pass(std::complex<T>* base, std::size_t count, bool fwd) const;
  /// Row transforms of one panel's first nrows rows, serially (the
  /// per-panel cache-blocked path).
  void panel_rows(std::complex<T>* panel, std::size_t nrows, bool fwd) const;

  std::size_t rows_, cols_;
  Fft1Plan<T> row_plan_;  // length cols: applied to each row
  Fft1Plan<T> col_plan_;  // length rows: applied to each column
};

/// Shared per-length fp64 1-D plan cache behind fft()/ifft()/fft_copy():
/// thread-safe, LRU-bounded. Hits return a shared_ptr so an eviction
/// never invalidates a plan another thread is still executing.
std::shared_ptr<const Fft1Plan<double>> fft_plan(std::size_t n);

struct FftPlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};
FftPlanCacheStats fft_plan_cache_stats();
void fft_plan_cache_clear();

/// Reconfigures the plan cache's LRU capacity (entries; clamped to >= 1)
/// and returns the previous capacity. Shrinking evicts least-recently
/// used plans immediately — in-flight executions keep their shared_ptr.
/// Hits and misses are also exported as the obs counters
/// `fft_plan_hits` / `fft_plan_misses`.
std::size_t fft_plan_cache_set_capacity(std::size_t entries);

}  // namespace ffw
