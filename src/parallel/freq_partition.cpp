#include "parallel/freq_partition.hpp"

#include <algorithm>

namespace ffw {

int FreqPartition::group_of(int rank) const {
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (rank >= groups[g].base && rank < groups[g].base + groups[g].size())
      return static_cast<int>(g);
  }
  FFW_CHECK_MSG(false, "rank outside the frequency partition");
  return -1;
}

std::vector<int> FreqPartition::ranks(int g) const {
  const BandGroup& grp = groups[static_cast<std::size_t>(g)];
  std::vector<int> out(static_cast<std::size_t>(grp.size()));
  for (int r = 0; r < grp.size(); ++r)
    out[static_cast<std::size_t>(r)] = grp.base + r;
  return out;
}

FreqPartition make_freq_partition(int nranks, int nbands, int freq_groups,
                                  int tree_ranks) {
  FFW_CHECK(nranks >= 1 && nbands >= 1 && tree_ranks >= 1);
  int fg = freq_groups;
  if (fg == 0) {
    // Largest divisor of the pool not exceeding the band count: every
    // group gets the same 2-D shape and no rank idles.
    const int cap = std::min(nbands, nranks);
    for (fg = cap; fg > 1; --fg) {
      if (nranks % fg == 0 && (nranks / fg) % tree_ranks == 0) break;
    }
  }
  FFW_CHECK_MSG(fg >= 1 && nranks % fg == 0,
                "freq partition: rank count does not divide into the "
                "requested band groups");
  const int per = nranks / fg;
  FFW_CHECK_MSG(per % tree_ranks == 0,
                "freq partition: group size does not divide into tree ranks");
  FreqPartition part;
  for (int g = 0; g < fg; ++g) {
    BandGroup grp;
    grp.base = g * per;
    grp.tree_ranks = tree_ranks;
    grp.illum_groups = per / tree_ranks;
    part.groups.push_back(grp);
  }
  return part;
}

}  // namespace ffw
