#include "parallel/parallel_for.hpp"

#include <atomic>
#include <thread>

namespace ffw {

namespace {
std::atomic<int> g_thread_cap{0};
}

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void set_num_threads(int n) { g_thread_cap.store(n < 0 ? 0 : n); }

int num_threads() {
  const int cap = g_thread_cap.load();
  return cap == 0 ? hardware_threads() : cap;
}

}  // namespace ffw
