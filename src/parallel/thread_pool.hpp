// A small task-based thread pool. The virtual cluster (`vcluster`) runs
// each rank's program on a dedicated thread; this pool serves auxiliary
// fan-out jobs (e.g. building operator tables for all levels at setup).
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ffw {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  /// Joins the workers; if a task threw and neither its future nor
  /// wait_idle() consumed the exception, rethrows it here (declared
  /// noexcept(false); suppressed only when already unwinding) — a
  /// throwing setup task can never silently yield a half-built table.
  ~ThreadPool() noexcept(false);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves when it finishes (and carries
  /// the task's exception, if any, for callers that keep it).
  std::future<void> submit(std::function<void()> task);

  /// Block until every submitted task has completed. If any task threw,
  /// rethrows the first captured exception (and clears it), so callers
  /// that discard futures still observe failures.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  // first task exception, guarded by mu_
};

}  // namespace ffw
