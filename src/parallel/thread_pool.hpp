// A small task-based thread pool. The virtual cluster (`vcluster`) runs
// each rank's program on a dedicated thread; this pool serves auxiliary
// fan-out jobs (e.g. building operator tables for all levels at setup).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ffw {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves when it finishes.
  std::future<void> submit(std::function<void()> task);

  /// Block until every submitted task has completed.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace ffw
