#include "parallel/thread_pool.hpp"

#include <exception>
#include <utility>

#include "common/check.hpp"

namespace ffw {

ThreadPool::ThreadPool(std::size_t threads) {
  FFW_CHECK(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() noexcept(false) {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Workers are gone; no lock needed. Rethrowing while another exception
  // is unwinding would terminate, so only surface the failure from a
  // normally-destroyed pool.
  if (first_error_ && std::uncaught_exceptions() == 0) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    std::rethrow_exception(e);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // Capture the first failure centrally before the packaged_task routes
  // it into the future — callers routinely discard the future, which
  // used to swallow the exception and leave e.g. a half-built operator
  // table looking healthy.
  std::packaged_task<void()> pt([this, t = std::move(task)] {
    try {
      t();
    } catch (...) {
      {
        std::lock_guard lk(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      throw;  // the future, if kept, still observes it
    }
  });
  auto fut = pt.get_future();
  {
    std::lock_guard lk(mu_);
    FFW_CHECK_MSG(!stop_, "submit after shutdown");
    queue_.push_back(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ffw
