#include "parallel/thread_pool.hpp"

#include "common/check.hpp"

namespace ffw {

ThreadPool::ThreadPool(std::size_t threads) {
  FFW_CHECK(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lk(mu_);
    FFW_CHECK_MSG(!stop_, "submit after shutdown");
    queue_.push_back(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace ffw
