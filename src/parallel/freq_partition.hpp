// Frequency as the third parallel axis (ROADMAP item 3): partition a
// rank pool into *band groups*. Each band group is itself a 2-D
// (illumination x sub-tree) grid — the paper's parallelisation — and
// bands of a frequency ladder are assigned to groups round-robin, so
// with fewer groups than bands a group runs several rungs in sequence
// while other groups' setup (table builds, measurement synthesis)
// overlaps the warm-start chain (dbim/continuation_parallel.hpp).
//
// The decomposition follows Gaggioli-Bruno's frequency-parallel
// observation (arXiv:2202.09421): per-band measurement sets are
// independent, so everything except the warm-start hand-off is
// embarrassingly parallel across bands.
#pragma once

#include <vector>

#include "common/check.hpp"

namespace ffw {

/// One band group: a contiguous window of global ranks arranged as an
/// illum_groups x tree_ranks grid.
struct BandGroup {
  int base = 0;          // first global rank of the window
  int illum_groups = 1;  // parallel dimension 1 within the group
  int tree_ranks = 1;    // parallel dimension 2 within the group
  int size() const { return illum_groups * tree_ranks; }
};

struct FreqPartition {
  std::vector<BandGroup> groups;

  int num_groups() const { return static_cast<int>(groups.size()); }
  int nranks() const {
    int n = 0;
    for (const BandGroup& g : groups) n += g.size();
    return n;
  }
  /// Group owning a global rank (windows are contiguous and ordered).
  int group_of(int rank) const;
  /// Global ranks of group g, sorted (the window's collective group).
  std::vector<int> ranks(int g) const;
  /// Band s of a ladder runs on this group (round-robin).
  int owner_of_band(int band) const {
    return band % static_cast<int>(groups.size());
  }
};

/// Splits `nranks` into `freq_groups` contiguous band groups of equal
/// size, each an (size/tree_ranks) x tree_ranks grid. freq_groups = 0
/// picks the largest divisor of nranks that is <= min(nbands, nranks) —
/// as many concurrent bands as the pool and the ladder allow without
/// leaving ranks idle. Aborts unless nranks divides evenly into the
/// requested shape.
FreqPartition make_freq_partition(int nranks, int nbands, int freq_groups = 0,
                                  int tree_ranks = 1);

}  // namespace ffw
