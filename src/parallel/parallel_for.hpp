// Within-node parallel loop, mirroring the paper's OpenMP layer
// (Sec. IV-C: clusters in parallel at low levels, samples in parallel at
// high levels). Compiles to a plain loop when OpenMP is absent so serial
// and parallel builds are numerically identical.
#pragma once

#include <cstddef>

#ifdef FFW_HAVE_OPENMP
#include <omp.h>
#endif

namespace ffw {

/// Number of worker threads the parallel_for will use.
int hardware_threads();

/// Set/get the library-wide thread cap (0 = use all hardware threads).
void set_num_threads(int n);
int num_threads();

/// Rank of the calling thread inside a parallel_for body, in
/// [0, num_threads()); 0 outside parallel regions. Used to index
/// per-thread scratch workspaces.
inline int thread_rank() {
#ifdef FFW_HAVE_OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F&& body) {
#ifdef FFW_HAVE_OPENMP
  const long long b = static_cast<long long>(begin);
  const long long e = static_cast<long long>(end);
#pragma omp parallel for schedule(static) num_threads(num_threads())
  for (long long i = b; i < e; ++i) body(static_cast<std::size_t>(i));
#else
  for (std::size_t i = begin; i < end; ++i) body(i);
#endif
}

/// Dynamic-schedule variant for irregular work (e.g. per-cluster
/// interaction lists with differing lengths near domain edges).
template <typename F>
void parallel_for_dynamic(std::size_t begin, std::size_t end, F&& body) {
#ifdef FFW_HAVE_OPENMP
  const long long b = static_cast<long long>(begin);
  const long long e = static_cast<long long>(end);
#pragma omp parallel for schedule(dynamic, 1) num_threads(num_threads())
  for (long long i = b; i < e; ++i) body(static_cast<std::size_t>(i));
#else
  for (std::size_t i = begin; i < end; ++i) body(i);
#endif
}

}  // namespace ffw
