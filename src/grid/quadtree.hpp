// MLFMA quad-tree geometry over the pixel grid (paper Sec. III-B).
//
// * Leaf clusters are 8x8 pixels (0.8 lambda at lambda/10 sampling),
//   matching the paper's strong-scaling setup ("each lowest-level
//   cluster involves 64 pixels").
// * Leaf clusters are stored in Morton order; the level-l cluster index
//   of a leaf is its Morton code shifted right by 2l, so parents own a
//   contiguous range of descendants — this is what makes the 16-way
//   sub-tree partitioning communication-free in aggregation (Sec. IV-A).
// * Levels are counted from the leaves (level 0) up to the highest
//   *computed* level, which has 4x4 = 16 clusters; translations are done
//   at every computed level. At intermediate levels the far-field
//   (interaction) list of a cluster is the standard FMM list: children
//   of the parent's near neighbours that are not the cluster's own near
//   neighbours (<= 27 entries, paper Fig. 5); at the top level it is all
//   non-adjacent clusters. Both draw their relative offsets from the
//   same 40-element set {(dx,dy): 2 <= max(|dx|,|dy|) <= 3} — the "40
//   unique types of translation operators" of Table I.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "grid/grid.hpp"

namespace ffw {

/// One far-field interaction: source cluster and which of the 40
/// translation-operator types connects it to the destination cluster.
struct FarEntry {
  std::uint32_t src;        // source cluster index (same level)
  std::uint16_t trans_type; // index into the level's translation table
};

/// One near-field interaction at the leaf level: source leaf and which of
/// the 9 near-operator types (3x3 neighbourhood) applies.
struct NearEntry {
  std::uint32_t src;
  std::uint16_t near_type;  // (dy+1)*3 + (dx+1), 0..8; 4 == self
};

struct TreeLevel {
  int side = 0;                    // clusters per domain side
  std::size_t num_clusters = 0;    // side*side
  double width = 0.0;              // cluster side length (wavelengths)
  // Far-field interaction lists, concatenated; list of cluster c is
  // far[far_begin[c] .. far_begin[c+1]).
  std::vector<std::uint32_t> far_begin;
  std::vector<FarEntry> far;
};

class QuadTree {
 public:
  /// The paper's leaf size: 8x8 pixels = 0.8 lambda at lambda/10
  /// sampling. Tunable (4/8/16 are the sensible values) — the leaf size
  /// trades near-field work (grows as leaf^2 per pixel) against
  /// far-field work (more levels and samples for smaller leaves); see
  /// bench_ablation_leafsize.
  static constexpr int kDefaultLeafPixelSide = 8;
  static constexpr int kTopSide = 4;  // 16 sub-trees at the top level

  /// Builds the tree for `grid`. nx must be a multiple of the leaf side
  /// with nx/leaf_pixel_side a power of two (the paper's domains are all
  /// of this form).
  explicit QuadTree(const Grid& grid,
                    int leaf_pixel_side = kDefaultLeafPixelSide);

  int leaf_pixel_side() const { return leaf_pixel_side_; }
  int pixels_per_leaf() const { return leaf_pixel_side_ * leaf_pixel_side_; }

  const Grid& grid() const { return grid_; }

  /// Number of computed levels (leaf = level 0). Zero when the domain is
  /// too small for any far-field translation (everything is near).
  int num_levels() const { return static_cast<int>(levels_.size()); }
  const TreeLevel& level(int l) const { return levels_[static_cast<std::size_t>(l)]; }

  int leaf_side() const { return leaf_side_; }
  std::size_t num_leaves() const {
    return static_cast<std::size_t>(leaf_side_) * leaf_side_;
  }

  /// Centre of cluster `c` (Morton index) at level l.
  Vec2 cluster_center(int l, std::size_t c) const;

  /// Leaf-level near lists (concatenated, like far lists).
  const std::vector<std::uint32_t>& near_begin() const { return near_begin_; }
  const std::vector<NearEntry>& near() const { return near_; }

  /// Cluster-ordered pixel layout: solver vectors store pixel values as
  /// [leaf 0 (Morton) | leaf 1 | ...], each leaf row-major locally.
  /// perm[cluster_ordered_index] = row_major_index.
  const std::vector<std::uint32_t>& perm() const { return perm_; }
  /// iperm[row_major_index] = cluster_ordered_index.
  const std::vector<std::uint32_t>& iperm() const { return iperm_; }

  /// Gather/scatter between row-major (natural) and cluster order.
  void to_cluster_order(ccspan natural, cspan clustered) const;
  void to_natural_order(ccspan clustered, cspan natural) const;

  /// Position of pixel p (0..pixels_per_leaf-1) relative to its
  /// leaf-cluster centre.
  Vec2 local_pixel_offset(int p) const;

  /// The 40 translation offsets (dx, dy) in cluster units, in
  /// trans_type order, shared by every level.
  static const std::vector<std::pair<int, int>>& translation_offsets();

 private:
  Grid grid_;
  int leaf_pixel_side_;
  int leaf_side_;
  std::vector<TreeLevel> levels_;
  std::vector<std::uint32_t> near_begin_;
  std::vector<NearEntry> near_;
  std::vector<std::uint32_t> perm_, iperm_;
};

}  // namespace ffw
