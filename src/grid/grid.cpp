#include "grid/grid.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ffw {

Grid::Grid(int nx, double pixels_per_wavelength) : nx_(nx) {
  FFW_CHECK_MSG(nx >= 1, "grid needs at least one pixel");
  FFW_CHECK(pixels_per_wavelength > 0);
  h_ = 1.0 / pixels_per_wavelength;
  k0_ = 2.0 * pi;  // lambda = 1
  a_ = h_ / std::sqrt(pi);
}

}  // namespace ffw
