// Imaging-domain discretisation (paper Sec. III-A): a square domain of
// side D centred at the origin, discretised into nx*nx square pixels of
// side lambda/10. Lengths are expressed in wavelengths (lambda = 1), so
// the background wavenumber is k0 = 2*pi.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace ffw {

class Grid {
 public:
  /// nx pixels per side; `pixels_per_wavelength` defaults to the paper's
  /// lambda/10 sampling.
  explicit Grid(int nx, double pixels_per_wavelength = 10.0);

  int nx() const { return nx_; }
  std::size_t num_pixels() const { return static_cast<std::size_t>(nx_) * nx_; }

  /// Pixel side length (wavelengths).
  double h() const { return h_; }
  /// Domain side length D (wavelengths).
  double domain() const { return h_ * nx_; }
  /// Background wavenumber (lambda = 1 units).
  double k0() const { return k0_; }
  /// Equal-area disk radius used by the Richmond pixel integration.
  double disk_radius() const { return a_; }

  /// Centre of pixel (ix, iy), 0 <= ix, iy < nx; domain centred at origin.
  Vec2 pixel_center(int ix, int iy) const {
    return {(ix + 0.5) * h_ - 0.5 * domain(), (iy + 0.5) * h_ - 0.5 * domain()};
  }

  /// Row-major linear pixel index.
  std::size_t pixel_index(int ix, int iy) const {
    return static_cast<std::size_t>(iy) * nx_ + ix;
  }

 private:
  int nx_;
  double h_;
  double k0_;
  double a_;
};

}  // namespace ffw
