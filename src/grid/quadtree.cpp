#include "grid/quadtree.hpp"

#include <array>

#include "common/check.hpp"
#include "common/morton.hpp"

namespace ffw {

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

/// 7x7 lookup from (dx+3, dy+3) to translation-type index (or -1).
std::array<int, 49> make_offset_lookup() {
  std::array<int, 49> lut;
  lut.fill(-1);
  const auto& offs = QuadTree::translation_offsets();
  for (std::size_t t = 0; t < offs.size(); ++t) {
    const auto [dx, dy] = offs[t];
    lut[static_cast<std::size_t>((dy + 3) * 7 + (dx + 3))] = static_cast<int>(t);
  }
  return lut;
}

}  // namespace

const std::vector<std::pair<int, int>>& QuadTree::translation_offsets() {
  static const std::vector<std::pair<int, int>> offsets = [] {
    std::vector<std::pair<int, int>> o;
    for (int dy = -3; dy <= 3; ++dy) {
      for (int dx = -3; dx <= 3; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) >= 2) o.emplace_back(dx, dy);
      }
    }
    FFW_CHECK(o.size() == 40);  // Table I: 40 translation types per level
    return o;
  }();
  return offsets;
}

QuadTree::QuadTree(const Grid& grid, int leaf_pixel_side)
    : grid_(grid), leaf_pixel_side_(leaf_pixel_side) {
  const int nx = grid.nx();
  FFW_CHECK_MSG(leaf_pixel_side_ >= 2,
                "leaf clusters need at least 2x2 pixels");
  FFW_CHECK_MSG(nx % leaf_pixel_side_ == 0,
                "nx must be a multiple of the leaf side");
  leaf_side_ = nx / leaf_pixel_side_;
  FFW_CHECK_MSG(is_pow2(leaf_side_),
                "nx/leaf_pixel_side must be a power of two");

  // Computed levels: sides leaf_side, leaf_side/2, ..., kTopSide.
  if (leaf_side_ >= kTopSide) {
    const double leaf_width = leaf_pixel_side_ * grid.h();
    int side = leaf_side_;
    double width = leaf_width;
    while (side >= kTopSide) {
      TreeLevel lvl;
      lvl.side = side;
      lvl.num_clusters = static_cast<std::size_t>(side) * side;
      lvl.width = width;
      levels_.push_back(std::move(lvl));
      side /= 2;
      width *= 2.0;
    }
  }

  static const std::array<int, 49> kOffsetLut = make_offset_lookup();

  // Far-field interaction lists per level.
  const int top = num_levels() - 1;
  for (int l = 0; l <= top; ++l) {
    TreeLevel& lvl = levels_[static_cast<std::size_t>(l)];
    const int side = lvl.side;
    lvl.far_begin.assign(lvl.num_clusters + 1, 0);
    // Two passes: count, then fill.
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<std::uint32_t> cursor;
      if (pass == 1) {
        std::uint32_t acc = 0;
        for (std::size_t c = 0; c < lvl.num_clusters; ++c) {
          const std::uint32_t n = lvl.far_begin[c];
          lvl.far_begin[c] = acc;
          acc += n;
        }
        lvl.far_begin[lvl.num_clusters] = acc;
        lvl.far.resize(acc);
        cursor.assign(lvl.far_begin.begin(), lvl.far_begin.end() - 1);
      }
      for (std::size_t c = 0; c < lvl.num_clusters; ++c) {
        std::uint32_t cx, cy;
        morton_decode(static_cast<std::uint32_t>(c), cx, cy);
        auto consider = [&](int sx, int sy) {
          if (sx < 0 || sy < 0 || sx >= side || sy >= side) return;
          const int dx = sx - static_cast<int>(cx);
          const int dy = sy - static_cast<int>(cy);
          if (std::max(std::abs(dx), std::abs(dy)) < 2) return;
          const int t = kOffsetLut[static_cast<std::size_t>((dy + 3) * 7 + (dx + 3))];
          FFW_DCHECK(t >= 0);
          if (pass == 0) {
            ++lvl.far_begin[c];
          } else {
            const std::uint32_t src =
                morton_encode(static_cast<std::uint32_t>(sx),
                              static_cast<std::uint32_t>(sy));
            lvl.far[cursor[c]++] =
                FarEntry{src, static_cast<std::uint16_t>(t)};
          }
        };
        if (l == top) {
          // Top computed level: every non-adjacent cluster interacts here
          // (there is no higher level to defer to). With side == 4 the
          // offsets still fall inside the 40-type set.
          for (int sy = 0; sy < side; ++sy)
            for (int sx = 0; sx < side; ++sx) consider(sx, sy);
        } else {
          // Standard FMM list: children of the parent's 3x3 neighbourhood
          // that are not own-near (paper Fig. 5: <= 27 entries).
          const int px = static_cast<int>(cx) / 2, py = static_cast<int>(cy) / 2;
          const int pside = side / 2;
          for (int j = -1; j <= 1; ++j) {
            for (int i = -1; i <= 1; ++i) {
              const int qx = px + i, qy = py + j;
              if (qx < 0 || qy < 0 || qx >= pside || qy >= pside) continue;
              for (int ch = 0; ch < 4; ++ch) {
                consider(2 * qx + (ch & 1), 2 * qy + (ch >> 1));
              }
            }
          }
        }
      }
      if (pass == 0 && lvl.num_clusters > 0) {
        // shift handled in pass-1 preamble
      }
    }
  }

  // Leaf near lists (3x3 neighbourhood, 9 operator types).
  const std::size_t nleaf = num_leaves();
  near_begin_.assign(nleaf + 1, 0);
  for (std::size_t c = 0; c < nleaf; ++c) {
    std::uint32_t cx, cy;
    morton_decode(static_cast<std::uint32_t>(c), cx, cy);
    std::uint32_t n = 0;
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        const int sx = static_cast<int>(cx) + dx, sy = static_cast<int>(cy) + dy;
        if (sx >= 0 && sy >= 0 && sx < leaf_side_ && sy < leaf_side_) ++n;
      }
    near_begin_[c + 1] = near_begin_[c] + n;
  }
  near_.resize(near_begin_[nleaf]);
  for (std::size_t c = 0; c < nleaf; ++c) {
    std::uint32_t cx, cy;
    morton_decode(static_cast<std::uint32_t>(c), cx, cy);
    std::uint32_t cur = near_begin_[c];
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        const int sx = static_cast<int>(cx) + dx, sy = static_cast<int>(cy) + dy;
        if (sx < 0 || sy < 0 || sx >= leaf_side_ || sy >= leaf_side_) continue;
        const std::uint32_t src = morton_encode(static_cast<std::uint32_t>(sx),
                                                static_cast<std::uint32_t>(sy));
        near_[cur++] = NearEntry{
            src, static_cast<std::uint16_t>((dy + 1) * 3 + (dx + 1))};
      }
  }

  // Cluster-order <-> natural-order permutations.
  const std::size_t npix = grid.num_pixels();
  const int np = pixels_per_leaf();
  perm_.resize(npix);
  iperm_.resize(npix);
  for (std::size_t c = 0; c < nleaf; ++c) {
    std::uint32_t lx, ly;
    morton_decode(static_cast<std::uint32_t>(c), lx, ly);
    for (int p = 0; p < np; ++p) {
      const int px = p % leaf_pixel_side_, py = p / leaf_pixel_side_;
      const std::size_t q = c * static_cast<std::size_t>(np) +
                            static_cast<std::size_t>(p);
      const std::size_t nat = grid.pixel_index(
          static_cast<int>(lx) * leaf_pixel_side_ + px,
          static_cast<int>(ly) * leaf_pixel_side_ + py);
      perm_[q] = static_cast<std::uint32_t>(nat);
      iperm_[nat] = static_cast<std::uint32_t>(q);
    }
  }
}

Vec2 QuadTree::cluster_center(int l, std::size_t c) const {
  const TreeLevel& lvl = level(l);
  std::uint32_t cx, cy;
  morton_decode(static_cast<std::uint32_t>(c), cx, cy);
  const double d = grid_.domain();
  return {(cx + 0.5) * lvl.width - 0.5 * d, (cy + 0.5) * lvl.width - 0.5 * d};
}

void QuadTree::to_cluster_order(ccspan natural, cspan clustered) const {
  FFW_CHECK(natural.size() == perm_.size() && clustered.size() == perm_.size());
  for (std::size_t q = 0; q < perm_.size(); ++q) clustered[q] = natural[perm_[q]];
}

void QuadTree::to_natural_order(ccspan clustered, cspan natural) const {
  FFW_CHECK(natural.size() == perm_.size() && clustered.size() == perm_.size());
  for (std::size_t q = 0; q < perm_.size(); ++q) natural[perm_[q]] = clustered[q];
}

Vec2 QuadTree::local_pixel_offset(int p) const {
  const double h = grid_.h();
  const int px = p % leaf_pixel_side_, py = p / leaf_pixel_side_;
  const double half = 0.5 * leaf_pixel_side_;
  return {(px + 0.5 - half) * h, (py + 0.5 - half) * h};
}

}  // namespace ffw
