// Cylindrical Bessel and Hankel functions of real argument.
//
// These power everything in the solver: the 2-D free-space Green's
// function g0(r,r') = (i/4) H0^(1)(k|r-r'|), the Richmond pixel
// integration factors (J1, H1), and the MLFMA diagonal translation
// operators T_L(alpha) = sum_m H_m^(1)(kX) e^{im(alpha - theta_X - pi/2)}
// which need H_m for all orders m = 0..L at once.
//
// Implementation notes (all from scratch, no libm special functions):
//  * small |x|  : ascending power series for J0/J1 and the standard
//                 log-series for Y0/Y1 (A&S 9.1.10-9.1.16 forms).
//  * large |x|  : Hankel asymptotic expansion
//                 H_v(x) ~ sqrt(2/(pi x)) e^{i(x - v pi/2 - pi/4)}
//                          sum_k i^k a_k(v) / x^k,
//                 truncated at the smallest term; J = Re H, Y = Im H.
//  * J_n arrays : Miller's downward recurrence normalised with
//                 J0 + 2*sum_{k>=1} J_{2k} = 1 (stable for any n, x).
//  * Y_n arrays : upward recurrence from Y0, Y1 (stable: Y_n grows).
//
// Accuracy: verified in tests against high-precision references to
// ~1e-12 relative (away from zeros), far below the 1e-5 MLFMA target.
#pragma once

#include "common/types.hpp"

namespace ffw {

double bessel_j0(double x);
double bessel_j1(double x);
/// Y0, Y1 require x > 0.
double bessel_y0(double x);
double bessel_y1(double x);

/// First-kind Hankel function H_n^{(1)}(x) for a single order, x > 0.
cplx hankel1(int n, double x);

/// out[m] = J_m(x) for m = 0..nmax (out.size() == nmax+1). x >= 0.
void bessel_jn_array(double x, rspan out);

/// out[m] = Y_m(x) for m = 0..nmax (out.size() == nmax+1). x > 0.
void bessel_yn_array(double x, rspan out);

/// out[m] = H_m^{(1)}(x) for m = 0..nmax. x > 0.
void hankel1_array(double x, cspan out);

}  // namespace ffw
