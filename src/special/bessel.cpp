#include "special/bessel.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ffw {

namespace {

constexpr double kEulerGamma = 0.57721566490153286060651209008240;
// Crossover between ascending series and asymptotic expansion. At x = 14
// both attain ~1e-11 relative accuracy or better for orders 0 and 1.
constexpr double kAsymX = 14.0;

/// Asymptotic H_v^{(1)}(x) for v in {0,1}, x >= kAsymX.
/// a_k(v) = prod_{j=1..k} (4v^2 - (2j-1)^2) / (k! 8^k); the series is
/// summed until terms stop decreasing (optimal truncation).
cplx hankel_asym(int v, double x) {
  const double mu = 4.0 * v * v;
  cplx sum = 1.0;
  double ak = 1.0;          // a_k(v) accumulated
  double scale = 1.0;       // 1/x^k
  double prev_mag = 1e300;
  cplx ipow = iu;           // i^k
  for (int k = 1; k <= 30; ++k) {
    const double num = mu - (2.0 * k - 1.0) * (2.0 * k - 1.0);
    ak *= num / (8.0 * k);
    scale /= x;
    const double mag = std::fabs(ak) * scale;
    if (mag >= prev_mag || mag < 1e-18) {
      if (mag < prev_mag) sum += ipow * (ak * scale);
      break;
    }
    prev_mag = mag;
    sum += ipow * (ak * scale);
    ipow *= iu;
  }
  const double phase = x - 0.5 * v * pi - 0.25 * pi;
  const cplx front = std::sqrt(2.0 / (pi * x)) *
                     cplx{std::cos(phase), std::sin(phase)};
  return front * sum;
}

double j0_series(double x) {
  const double q = 0.25 * x * x;
  double term = 1.0, sum = 1.0;
  for (int k = 1; k <= 60; ++k) {
    term *= -q / (static_cast<double>(k) * k);
    sum += term;
    if (std::fabs(term) < 1e-18 * std::fabs(sum) + 1e-300) break;
  }
  return sum;
}

double j1_series(double x) {
  const double q = 0.25 * x * x;
  double term = 0.5 * x, sum = term;
  for (int k = 1; k <= 60; ++k) {
    term *= -q / (static_cast<double>(k) * (k + 1.0));
    sum += term;
    if (std::fabs(term) < 1e-18 * std::fabs(sum) + 1e-300) break;
  }
  return sum;
}

double y0_series(double x) {
  // Y0 = (2/pi)(ln(x/2)+gamma) J0(x) + (2/pi) sum_{k>=1} (-1)^{k+1} H_k q^k/(k!)^2
  const double q = 0.25 * x * x;
  double term = 1.0, hk = 0.0, sum = 0.0;
  for (int k = 1; k <= 60; ++k) {
    term *= -q / (static_cast<double>(k) * k);
    hk += 1.0 / k;
    sum -= term * hk;  // (-1)^{k+1} * |term| pattern folded into term's sign
    if (std::fabs(term * hk) < 1e-18 * (std::fabs(sum) + 1.0)) break;
  }
  return (2.0 / pi) * ((std::log(0.5 * x) + kEulerGamma) * j0_series(x) + sum);
}

double y1_series(double x) {
  // Y1 = (2/pi)(ln(x/2)+gamma) J1(x) - 2/(pi x)
  //      - (1/pi) sum_{k>=0} (-1)^k (H_k + H_{k+1}) (x/2)^{2k+1} / (k!(k+1)!)
  const double q = 0.25 * x * x;
  double term = 0.5 * x;  // (x/2)^{2k+1}/(k!(k+1)!) at k=0
  double hk = 0.0, hk1 = 1.0;
  double sum = term * (hk + hk1);
  for (int k = 1; k <= 60; ++k) {
    term *= -q / (static_cast<double>(k) * (k + 1.0));
    hk += 1.0 / k;
    hk1 += 1.0 / (k + 1.0);
    const double c = term * (hk + hk1);
    sum += c;
    if (std::fabs(c) < 1e-18 * (std::fabs(sum) + 1.0)) break;
  }
  return (2.0 / pi) * (std::log(0.5 * x) + kEulerGamma) * j1_series(x) -
         2.0 / (pi * x) - sum / pi;
}

}  // namespace

double bessel_j0(double x) {
  x = std::fabs(x);
  return x < kAsymX ? j0_series(x) : hankel_asym(0, x).real();
}

double bessel_j1(double x) {
  const double ax = std::fabs(x);
  const double v = ax < kAsymX ? j1_series(ax) : hankel_asym(1, ax).real();
  return x < 0 ? -v : v;
}

double bessel_y0(double x) {
  FFW_CHECK_MSG(x > 0.0, "Y0 requires positive argument");
  return x < kAsymX ? y0_series(x) : hankel_asym(0, x).imag();
}

double bessel_y1(double x) {
  FFW_CHECK_MSG(x > 0.0, "Y1 requires positive argument");
  return x < kAsymX ? y1_series(x) : hankel_asym(1, x).imag();
}

void bessel_jn_array(double x, rspan out) {
  FFW_CHECK(!out.empty());
  const int nmax = static_cast<int>(out.size()) - 1;
  const double ax = std::fabs(x);
  if (ax < 1e-30) {
    out[0] = 1.0;
    for (int m = 1; m <= nmax; ++m) out[m] = 0.0;
    return;
  }
  // Miller's algorithm: downward recurrence from a start order well above
  // both nmax and x, then normalise with J0 + 2 sum J_{2k} = 1.
  const int big = std::max(nmax, static_cast<int>(std::ceil(ax)));
  const int mstart =
      big + 20 + static_cast<int>(std::ceil(std::sqrt(42.0 * (big + 1))));
  double jp1 = 0.0, j = 1e-30, norm = 0.0;
  for (int m = mstart; m >= 0; --m) {
    const double jm1 = (2.0 * (m + 1)) / ax * j - jp1;
    jp1 = j;
    j = jm1;
    if (m <= nmax) out[m] = j;
    if (m > 0 && m % 2 == 0) norm += 2.0 * j;
    if (std::fabs(j) > 1e250) {  // rescale to avoid overflow
      const double s = 1e-250;
      j *= s;
      jp1 *= s;
      norm *= s;
      for (int q = m; q <= nmax; ++q) out[q] *= s;
    }
  }
  norm += j;  // J0 term
  for (int m = 0; m <= nmax; ++m) out[m] /= norm;
  if (x < 0) {  // J_m(-x) = (-1)^m J_m(x)
    for (int m = 1; m <= nmax; m += 2) out[m] = -out[m];
  }
}

void bessel_yn_array(double x, rspan out) {
  FFW_CHECK(!out.empty());
  FFW_CHECK_MSG(x > 0.0, "Yn requires positive argument");
  const int nmax = static_cast<int>(out.size()) - 1;
  out[0] = bessel_y0(x);
  if (nmax >= 1) out[1] = bessel_y1(x);
  for (int m = 1; m < nmax; ++m) {
    out[m + 1] = (2.0 * m) / x * out[m] - out[m - 1];
  }
}

void hankel1_array(double x, cspan out) {
  FFW_CHECK(!out.empty());
  const std::size_t n = out.size();
  rvec jn(n), yn(n);
  bessel_jn_array(x, jn);
  bessel_yn_array(x, yn);
  for (std::size_t m = 0; m < n; ++m) out[m] = {jn[m], yn[m]};
}

cplx hankel1(int n, double x) {
  FFW_CHECK(n >= 0);
  cvec h(static_cast<std::size_t>(n) + 1);
  hankel1_array(x, h);
  return h[static_cast<std::size_t>(n)];
}

}  // namespace ffw
